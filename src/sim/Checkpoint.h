//===-- sim/Checkpoint.h - Exploration frontier snapshots -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-resilient checkpointing of an in-flight exploration (DESIGN.md
/// Section 9): an ExplorationSnapshot captures everything needed to finish
/// an interrupted exhaustive search *exactly* —
///
///  * the live frontier as a disjoint set of pinned DecisionTree prefixes
///    (the shared work queue plus every worker's drained backtrack state,
///    with sleep-set snapshots where the reduction was active), and
///  * the deterministic Summary core of the already-executed share.
///
/// Because donated prefixes partition the decision tree (the invariant the
/// parallel explorer is built on), exploring the snapshot's frontier — at
/// any worker count, in any order — and merging the resulting cores into
/// the saved partial core reproduces the bit-identical Summary of an
/// uninterrupted run. exploreResumable (ParallelExplorer.h) produces and
/// consumes snapshots; serializeSnapshot/parseSnapshot give them a
/// versioned, line-oriented text form for checkpoint files.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_CHECKPOINT_H
#define COMPASS_SIM_CHECKPOINT_H

#include "sim/Explorer.h"

#include <string>
#include <string_view>
#include <vector>

namespace compass::sim {

/// The resumable state of one interrupted exploration; see file comment.
struct ExplorationSnapshot {
  /// Deterministic Summary core of the executions performed so far
  /// (Exhausted is true: the executed share is complete, the remainder's
  /// exhaustion is accounted by the frontier prefixes once explored).
  Explorer::Summary Partial;

  /// Disjoint pinned prefixes covering every unexplored decision
  /// sequence. Empty means the exploration finished (nothing to resume).
  std::vector<DecisionTree::Prefix> Frontier;

  bool empty() const { return Frontier.empty(); }
};

/// Interns \p Tag into a process-lifetime string table and returns a
/// stable pointer, so deserialized DecisionTree::Decision::Tag values
/// compare and print like the static literals they were serialized from.
const char *internTag(std::string_view Tag);

/// Serializes \p S in a versioned line-oriented text format (see
/// Checkpoint.cpp for the grammar). The output is self-contained and
/// embeddable inside larger checkpoint files (check/Checkpoint.h).
std::string serializeSnapshot(const ExplorationSnapshot &S);

/// Parses serializeSnapshot output. On failure returns false and sets
/// \p Err; \p Out is left in an unspecified state. Unknown trailing lines
/// after the closing marker are not consumed (streaming-friendly).
bool parseSnapshot(std::string_view Text, ExplorationSnapshot &Out,
                   std::string &Err);

} // namespace compass::sim

#endif // COMPASS_SIM_CHECKPOINT_H
