//===-- sim/ParallelExplorer.h - Multi-worker DFS exploration ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel exhaustive exploration: N std::thread workers, each owning a
/// private Machine/Scheduler/Explorer (and thus a private DecisionTree),
/// fed from a shared work queue of unexplored subtree prefixes.
///
/// Protocol: the queue starts with the root (empty) prefix. A worker pops a
/// prefix, seeds an Explorer with it, and DFS-enumerates that subtree —
/// replaying the prefix at the start of every execution, exactly like the
/// serial explorer replays its backtracked prefix. Whenever other workers
/// are starved, the worker *donates* the untried alternatives of its
/// shallowest open choice point back to the queue (DecisionTree::split) and
/// keeps searching its own branch. Exploration terminates when the queue is
/// empty and no worker holds a subtree.
///
/// Determinism guarantee: the donated prefixes partition the decision tree,
/// every decision sequence is enumerated by exactly one worker, and every
/// Summary field in the deterministic core is a sum / max / AND / lex-min
/// over executions — so the aggregated Summary core is **bit-identical to
/// the serial explorer's** for any worker count (provided the run is not
/// truncated by StopOnViolation). The first violation surfaced is the
/// lexicographically least violating decision sequence, which is exactly
/// the one serial DFS finds first; reproduce it with
/// replay(W, Summary::firstViolationDecisions()).
///
/// The global MaxExecutions budget is enforced with a shared atomic ticket
/// counter, so the *number* of executions also matches the serial explorer
/// when the budget truncates the search (the particular executions explored
/// then depend on scheduling, and the remaining counters may differ).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_PARALLELEXPLORER_H
#define COMPASS_SIM_PARALLELEXPLORER_H

#include "sim/Workload.h"

namespace compass::sim {

/// Runs a Workload under N worker threads; see file comment.
class ParallelExplorer {
public:
  /// Worker count comes from W.options().Workers (values < 2 still run the
  /// full parallel machinery with one worker; prefer exploreSerial then).
  explicit ParallelExplorer(Workload W) : W(std::move(W)) {}

  /// Explores the workload to completion and returns the aggregated
  /// summary. Exhaustive mode only (random sampling has no tree to split);
  /// random-mode workloads are routed to the serial explorer.
  Explorer::Summary run();

private:
  Workload W;
};

/// Runs \p W under the serial explorer, or under ParallelExplorer when
/// Options::Workers > 1 (exhaustive mode only).
Explorer::Summary explore(const Workload &W);

} // namespace compass::sim

#endif // COMPASS_SIM_PARALLELEXPLORER_H
