//===-- sim/ParallelExplorer.h - Multi-worker DFS exploration ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel exhaustive exploration: N std::thread workers, each owning a
/// persistent Machine/Scheduler arena plus a per-subtree Explorer (and
/// thus a private DecisionTree), fed from per-worker deques of unexplored
/// subtree prefixes with work stealing.
///
/// Protocol: worker 0's deque starts with the root (empty) prefix — or,
/// when resuming from a checkpoint (sim/Checkpoint.h), the deques are
/// seeded round-robin with the snapshot's frontier of pinned prefixes. A
/// worker takes from the back of its own deque (deepest donation first),
/// steals from the front of another's when its own is empty (shallowest =
/// largest subtree), seeds an Explorer with the prefix, and DFS-enumerates
/// that subtree under the copy-on-write engine (sim/Engine.h) — exactly
/// the serial explorer's execution path. Donation is proactive, batched,
/// and gated: after an execution, a worker whose tree still has a healthy
/// open frontier refills the pool with a batch of its shallowest untried
/// alternatives (DecisionTree::split) whenever the total queued work drops
/// below the low-water mark. Termination is unit-counted: the worker that
/// retires the last queued-or-running prefix ends the exploration.
///
/// Determinism guarantee: the donated prefixes partition the decision tree,
/// every decision sequence is enumerated by exactly one worker, and every
/// Summary field in the deterministic core is a sum / max / AND / lex-min
/// over executions — so the aggregated Summary core is **bit-identical to
/// the serial explorer's** for any worker count, and likewise across any
/// interrupt/resume segmentation (provided the run is not truncated by
/// StopOnViolation or the execution budget).
///
/// StopOnViolation guarantee: the first violation surfaced is the
/// lexicographically least violating decision sequence — exactly the one
/// serial DFS finds first, identical at any worker count. Workers share the
/// best (lex-min) violation found so far; a worker abandons its subtree at
/// its own first violation (DFS yields each subtree's least first) and the
/// search continues only where a lex-smaller violation could still hide
/// (prefixes and pending paths that are lex-below the current best).
/// Reproduce the result with replay(W, Summary::firstViolationDecisions()).
/// The remaining counters are still truncation-dependent.
///
/// The global MaxExecutions budget is enforced with a shared atomic ticket
/// counter, so the *number* of executions also matches the serial explorer
/// when the budget truncates the search (the particular executions explored
/// then depend on scheduling, and the remaining counters may differ).
///
/// exploreResumable() adds cooperative interruption on top: an external
/// stop flag (signal handlers), a wall-clock deadline, and an execution-
/// count tripwire all make the workers finish their current execution,
/// convert every unexplored remainder into pinned prefixes
/// (Explorer::drainFrontier), and hand back an ExplorationSnapshot that a
/// later call — at any worker count — resumes to the bit-identical final
/// summary core.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_PARALLELEXPLORER_H
#define COMPASS_SIM_PARALLELEXPLORER_H

#include "sim/Checkpoint.h"
#include "sim/Workload.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace compass::sim {

/// A point-in-time progress sample of a running exploration, delivered to
/// ExploreControl::OnHeartbeat from the coordinating thread. Values are
/// sampled with relaxed loads — approximate by design; only the final
/// Summary core is exact.
struct ExploreHeartbeat {
  double WallSeconds = 0;  ///< Wall time since this segment started.
  uint64_t Executions = 0; ///< Total executions incl. any resumed base.
  double ExecsPerSec = 0;  ///< Executions/s over this segment.
  uint64_t QueueSize = 0;  ///< Shared work-queue length right now.
  unsigned BusyWorkers = 0;
  unsigned Workers = 0;
  uint64_t Donations = 0; ///< Prefixes donated between workers so far.

  /// Per-worker progress counters.
  struct WorkerSample {
    uint64_t Execs = 0;    ///< Executions this worker performed.
    uint64_t Donated = 0;  ///< Prefixes this worker donated.
    uint64_t Frontier = 0; ///< Worker's live DFS frontier size.
    uint64_t Depth = 0;    ///< Worker's current decision-path depth.
  };
  std::vector<WorkerSample> PerWorker;
};

/// External control over a resumable exploration. All fields optional; a
/// default-constructed ExploreControl reproduces plain run() behavior.
struct ExploreControl {
  /// Cooperative interrupt, typically set from a SIGINT/SIGTERM handler:
  /// polled ~20x/s by the coordinator; once true, workers finish their
  /// in-flight execution and drain into the snapshot.
  const std::atomic<bool> *StopRequested = nullptr;

  /// >0: interrupt once this much wall time (seconds) has elapsed in this
  /// segment (--time-budget / time-based checkpoint cadence).
  double DeadlineSec = 0;

  /// >0: interrupt once the global execution count (including a resumed
  /// snapshot's executed base) reaches this value. The trip point is
  /// approximate — in-flight executions complete — but the snapshot is
  /// exact regardless of where the interrupt lands.
  uint64_t InterruptAtExecs = 0;

  /// >0 with OnHeartbeat set: emit a heartbeat every interval (seconds).
  double HeartbeatIntervalSec = 0;
  std::function<void(const ExploreHeartbeat &)> OnHeartbeat;
};

/// Result of one (possibly interrupted) exploration segment.
struct ExploreResult {
  /// Aggregated summary. When Interrupted, this is the deterministic core
  /// of the executed share (== Snapshot.Partial); when not, it is the
  /// final summary, bit-identical to an uninterrupted serial run's core.
  Explorer::Summary Sum;

  /// True when the segment was cut short by ExploreControl and unexplored
  /// work remains in Snapshot. False means the exploration finished (the
  /// snapshot is empty) even if an interrupt raced with completion.
  bool Interrupted = false;

  /// The resumable remainder; see sim/Checkpoint.h. Empty unless
  /// Interrupted.
  ExplorationSnapshot Snapshot;
};

/// Explores \p W (exhaustive mode) under W.options().Workers threads with
/// cooperative interruption. Pass \p Resume to continue a previous
/// segment's snapshot instead of starting at the root; the final merged
/// summary core is bit-identical to an uninterrupted run at any worker
/// count and any interrupt/resume segmentation. Random-mode workloads run
/// serially and ignore \p Ctl / \p Resume (never interrupted).
ExploreResult exploreResumable(const Workload &W, const ExploreControl &Ctl,
                               const ExplorationSnapshot *Resume = nullptr);

/// Runs a Workload under N worker threads; see file comment.
class ParallelExplorer {
public:
  /// Worker count comes from W.options().Workers (values < 2 still run the
  /// full parallel machinery with one worker; prefer exploreSerial then).
  explicit ParallelExplorer(Workload W) : W(std::move(W)) {}

  /// Explores the workload to completion and returns the aggregated
  /// summary. Exhaustive mode only (random sampling has no tree to split);
  /// random-mode workloads are routed to the serial explorer.
  Explorer::Summary run();

private:
  Workload W;
};

/// Runs \p W under the serial explorer, or under ParallelExplorer when
/// Options::Workers > 1 (exhaustive mode only).
Explorer::Summary explore(const Workload &W);

} // namespace compass::sim

#endif // COMPASS_SIM_PARALLELEXPLORER_H
