//===-- graph/EventGraph.cpp - The per-simulation event graph --------------===//

#include "graph/EventGraph.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace compass;
using namespace compass::graph;

EventId EventGraph::reserve() {
  Events.emplace_back();
  States.push_back(State::Reserved);
  return static_cast<EventId>(Events.size()) - 1;
}

void EventGraph::commit(EventId Id, Event E) {
  if (Id >= Events.size() || States[Id] != State::Reserved)
    fatalError("commit of an id that is not reserved");
  E.CommitIdx = NextCommitIdx++;
  Events[Id] = std::move(E);
  States[Id] = State::Committed;
  UndoLog.push_back(Id);
  assert(Events[Id].Kind != OpKind::Invalid && "committing an empty event");
}

void EventGraph::retract(EventId Id) {
  if (Id >= Events.size() || States[Id] != State::Reserved)
    fatalError("retract of an id that is not reserved");
  States[Id] = State::Retracted;
  UndoLog.push_back(Id);
}

void EventGraph::trimToEpoch(const Epoch &E) {
  assert(E.UndoMark <= UndoLog.size() && "epoch from a different timeline");
  for (size_t I = UndoLog.size(); I > E.UndoMark; --I) {
    EventId Id = UndoLog[I - 1];
    if (Id < E.NumEvents)
      States[Id] = State::Reserved;
  }
  UndoLog.resize(E.UndoMark);
  Events.resize(E.NumEvents);
  States.resize(E.NumEvents, State::Reserved);
  So.resize(E.NumSo);
  NextCommitIdx = E.NextCommit;
}

void EventGraph::addRaw(EventId Id, Event E) {
  if (Id >= Events.size()) {
    Events.resize(Id + 1);
    States.resize(Id + 1, State::Retracted);
  }
  if (States[Id] == State::Committed)
    fatalError("addRaw would overwrite a committed event");
  if (E.Kind == OpKind::Invalid)
    fatalError("addRaw of an invalid event");
  States[Id] = State::Committed;
  if (E.CommitIdx >= NextCommitIdx)
    NextCommitIdx = E.CommitIdx + 1;
  Events[Id] = std::move(E);
}

void EventGraph::addSo(EventId From, EventId To) {
  if (!isCommitted(From) || !isCommitted(To))
    fatalError("so edge between uncommitted events");
  So.push_back({From, To});
}

bool EventGraph::isCommitted(EventId Id) const {
  return Id < Events.size() && States[Id] == State::Committed;
}

const Event &EventGraph::event(EventId Id) const {
  if (!isCommitted(Id))
    fatalError("event() on an uncommitted id");
  return Events[Id];
}

bool EventGraph::lhb(EventId E, EventId D) const {
  if (E == D || !isCommitted(E) || !isCommitted(D))
    return false;
  return Events[D].LogView.contains(E);
}

std::vector<EventId> EventGraph::committedEvents() const {
  std::vector<EventId> Out;
  for (EventId Id = 0, N = static_cast<EventId>(Events.size()); Id != N;
       ++Id)
    if (States[Id] == State::Committed)
      Out.push_back(Id);
  std::sort(Out.begin(), Out.end(), [&](EventId A, EventId B) {
    return Events[A].CommitIdx < Events[B].CommitIdx;
  });
  return Out;
}

std::vector<EventId> EventGraph::objectEvents(unsigned ObjId) const {
  std::vector<EventId> Out;
  for (EventId Id : committedEvents())
    if (Events[Id].ObjId == ObjId)
      Out.push_back(Id);
  return Out;
}

std::vector<EventId> EventGraph::soSuccessors(EventId Id) const {
  std::vector<EventId> Out;
  for (const SoEdge &Edge : So)
    if (Edge.From == Id)
      Out.push_back(Edge.To);
  return Out;
}

std::vector<EventId> EventGraph::soPredecessors(EventId Id) const {
  std::vector<EventId> Out;
  for (const SoEdge &Edge : So)
    if (Edge.To == Id)
      Out.push_back(Edge.From);
  return Out;
}

std::optional<EventId> EventGraph::matchOfProducer(EventId Id) const {
  std::vector<EventId> Succ = soSuccessors(Id);
  assert(Succ.size() <= 1 && "producer matched more than once");
  if (Succ.empty())
    return std::nullopt;
  return Succ.front();
}

std::optional<EventId> EventGraph::matchOfConsumer(EventId Id) const {
  std::vector<EventId> Pred = soPredecessors(Id);
  assert(Pred.size() <= 1 && "consumer matched more than once");
  if (Pred.empty())
    return std::nullopt;
  return Pred.front();
}

std::string EventGraph::checkWellFormed() const {
  std::vector<EventId> Committed = committedEvents();

  // Commit indices are unique (committedEvents sorted by them).
  for (size_t I = 1; I < Committed.size(); ++I)
    if (Events[Committed[I - 1]].CommitIdx ==
        Events[Committed[I]].CommitIdx)
      return "duplicate commit index";

  for (EventId D : Committed) {
    const Event &Ev = Events[D];
    if (!Ev.LogView.contains(D))
      return "event " + std::to_string(D) +
             " does not observe itself in its logical view";
    bool Bad = false;
    std::string Err;
    Ev.LogView.forEach([&](EventId E) {
      if (Bad || E == D)
        return;
      if (E >= Events.size()) {
        Bad = true;
        Err = "logical view contains unknown id";
        return;
      }
      if (States[E] != State::Committed)
        return; // Retracted/reserved ids in views carry no information.
      if (Events[E].CommitIdx >= Ev.CommitIdx) {
        Bad = true;
        Err = "event " + std::to_string(D) +
              " observes later-committed event " + std::to_string(E);
        return;
      }
      // Transitivity: what E observed, D observes.
      if (!Bad) {
        Events[E].LogView.forEach([&](EventId F) {
          if (States[F] == State::Committed && !Ev.LogView.contains(F)) {
            Bad = true;
            Err = "logical views not transitively closed";
          }
        });
      }
    });
    if (Bad)
      return Err;
  }

  for (const SoEdge &Edge : So)
    if (!isCommitted(Edge.From) || !isCommitted(Edge.To))
      return "so edge between uncommitted events";
  return "";
}

std::string EventGraph::str() const {
  std::string Out;
  for (EventId Id : committedEvents()) {
    Out += Events[Id].str(Id);
    Out += "\n";
  }
  for (const SoEdge &Edge : So)
    Out += "so: #" + std::to_string(Edge.From) + " -> #" +
           std::to_string(Edge.To) + "\n";
  return Out;
}
