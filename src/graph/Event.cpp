//===-- graph/Event.cpp - Library operation events -------------------------===//

#include "graph/Event.h"

using namespace compass;
using namespace compass::graph;

const char *compass::graph::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Invalid:
    return "invalid";
  case OpKind::Enq:
    return "Enq";
  case OpKind::DeqOk:
    return "Deq";
  case OpKind::DeqEmpty:
    return "Deq(eps)";
  case OpKind::Push:
    return "Push";
  case OpKind::PopOk:
    return "Pop";
  case OpKind::PopEmpty:
    return "Pop(eps)";
  case OpKind::Exchange:
    return "Xchg";
  case OpKind::Steal:
    return "Steal";
  case OpKind::StealEmpty:
    return "Steal(eps)";
  }
  return "?";
}

bool compass::graph::isWriteKind(OpKind K) {
  switch (K) {
  case OpKind::Enq:
  case OpKind::DeqOk:
  case OpKind::Push:
  case OpKind::PopOk:
  case OpKind::Exchange:
  case OpKind::Steal:
    return true;
  case OpKind::Invalid:
  case OpKind::DeqEmpty:
  case OpKind::PopEmpty:
  case OpKind::StealEmpty:
    return false;
  }
  return false;
}

static std::string valueStr(rmc::Value V) {
  if (V == EmptyVal)
    return "eps";
  if (V == BottomVal)
    return "bot";
  if (V == SentinelVal)
    return "SENTINEL";
  if (V == FailRaceVal)
    return "FAIL_RACE";
  return std::to_string(V);
}

std::string Event::str(EventId Id) const {
  std::string Out = "#" + std::to_string(Id) + " " + opKindName(Kind);
  switch (Kind) {
  case OpKind::Enq:
  case OpKind::DeqOk:
  case OpKind::Push:
  case OpKind::PopOk:
  case OpKind::Steal:
    Out += "(" + valueStr(V1) + ")";
    break;
  case OpKind::Exchange:
    Out += "(" + valueStr(V1) + ", " + valueStr(V2) + ")";
    break;
  default:
    break;
  }
  Out += " obj" + std::to_string(ObjId) + " T" + std::to_string(Thread) +
         " c" + std::to_string(CommitIdx);
  return Out;
}
