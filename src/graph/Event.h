//===-- graph/Event.h - Library operation events ----------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events of library operations, following Section 3.1 of the paper: each
/// committed operation is represented by an event carrying its type (with
/// payload values), the *physical view* at its commit point, and its
/// *logical view* — the set of events of operations that happen-before it
/// (the paper's `logview`, which realizes the local-happens-before relation
/// lhb of Yacovet).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_GRAPH_EVENT_H
#define COMPASS_GRAPH_EVENT_H

#include "rmc/Memory.h"
#include "rmc/View.h"
#include "support/IdSet.h"

#include <cstdint>
#include <string>

namespace compass::graph {

/// Identifies an event within one simulation's global event space.
using EventId = uint32_t;

/// Distinguished values used by the libraries and their specs.
/// The paper writes them ε (empty), ⊥ (failed exchange), SENTINEL and
/// FAIL_RACE (Section 4.1).
inline constexpr rmc::Value EmptyVal = ~0ull;        ///< ε
inline constexpr rmc::Value BottomVal = ~0ull - 1;   ///< ⊥
inline constexpr rmc::Value SentinelVal = ~0ull - 2; ///< SENTINEL
inline constexpr rmc::Value FailRaceVal = ~0ull - 3; ///< FAIL_RACE

/// The operation an event stands for.
enum class OpKind : uint8_t {
  Invalid,   ///< Reserved or retracted, never committed.
  Enq,       ///< Enq(v): v in V1.
  DeqOk,     ///< Deq(v): v in V1.
  DeqEmpty,  ///< Deq(ε).
  Push,      ///< Push(v): v in V1.
  PopOk,     ///< Pop(v): v in V1. Also the work-stealing owner's take.
  PopEmpty,  ///< Pop(ε).
  Exchange,  ///< Exchange(v1, v2): own value V1, partner value V2 (⊥ if
             ///< the exchange failed).
  Steal,     ///< Steal(v): a thief's successful steal (work-stealing
             ///< deque, the paper's Section 6 future work).
  StealEmpty ///< Steal(ε): a thief found the deque empty.
};

const char *opKindName(OpKind K);

/// True for kinds that modify the abstract state of their object.
bool isWriteKind(OpKind K);

/// One committed library operation.
struct Event {
  OpKind Kind = OpKind::Invalid;
  rmc::Value V1 = 0; ///< Primary payload (see OpKind).
  rmc::Value V2 = 0; ///< Secondary payload (exchanger only).

  unsigned ObjId = 0;  ///< The library object this event belongs to.
  unsigned Thread = 0; ///< Executing thread.

  /// Global commit sequence number: the order in which commits update the
  /// shared state (the paper's commit order `<` from Section 4.2).
  uint32_t CommitIdx = 0;

  /// Physical view at the commit point (the `view` field of Section 3.1).
  rmc::View PhysView;

  /// Logical view at the commit point: ids of all events that happen-before
  /// this one, *including this event itself* (the paper's `e ∈ M'`).
  IdSet LogView;

  std::string str(EventId Id) const;
};

} // namespace compass::graph

#endif // COMPASS_GRAPH_EVENT_H
