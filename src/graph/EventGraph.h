//===-- graph/EventGraph.h - The per-simulation event graph -----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event graph `G` of Section 3.1: a map from event ids to events plus
/// the `so` (synchronized-with) relation between them. One graph instance
/// spans a whole simulation; events are tagged with the library object they
/// belong to, so per-object graphs (as in the paper, one graph per object)
/// are the projections by ObjId. Keeping a single id space is what makes
/// the elimination-stack composition of Section 4 expressible: its events
/// are built from the base stack's and the exchanger's events.
///
/// The graph is append-only and grows through a reserve/commit/retract
/// protocol driven by the spec monitor (spec/SpecMonitor.h): ids are
/// reserved before an operation's commit instruction so that the commit
/// write can carry the id in its message's logical view, and either
/// committed (filling in the event) or retracted (e.g. when a CAS that
/// would have been the commit point fails).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_GRAPH_EVENTGRAPH_H
#define COMPASS_GRAPH_EVENTGRAPH_H

#include "graph/Event.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace compass::graph {

/// A pair in the synchronized-with relation; for container objects the
/// first component is the producing event (Enq/Push) and the second the
/// consuming one (DeqOk/PopOk); for exchangers so-pairs come in both
/// directions (Section 4.2).
struct SoEdge {
  EventId From;
  EventId To;
};

/// The (global) event graph; see file comment.
class EventGraph {
public:
  /// Rewinds to the empty graph, keeping vector capacity for reuse.
  void reset() {
    Events.clear();
    States.clear();
    So.clear();
    UndoLog.clear();
    NextCommitIdx = 0;
  }

  /// A point in this graph's mutation history, for the copy-on-write
  /// engine (sim/Engine.h). Capturing one is O(1); trimToEpoch rewinds
  /// to it touching only state created after the mark. Epochs pop LIFO
  /// along the DFS path, mirroring rmc::Memory::Epoch.
  struct Epoch {
    size_t NumEvents = 0;
    size_t NumSo = 0;
    uint32_t NextCommit = 0;
    size_t UndoMark = 0;
  };

  Epoch epoch() const {
    return {Events.size(), So.size(), NextCommitIdx, UndoLog.size()};
  }

  /// Rewinds to \p E: ids reserved after the mark are dropped; ids
  /// reserved before but committed/retracted after revert to Reserved
  /// (their event payload may hold garbage, exactly as a fresh
  /// reservation's does); so edges and commit indices rewind with them.
  void trimToEpoch(const Epoch &E);

  /// Allocates a fresh id in Reserved state.
  EventId reserve();

  /// Fills in the event for a reserved id and assigns the next commit
  /// index. \p E.CommitIdx is overwritten.
  void commit(EventId Id, Event E);

  /// Marks a reserved id as permanently unused.
  void retract(EventId Id);

  /// Composition/testing support: inserts a committed event with an
  /// explicit id and commit index (both must be unused). Used to build
  /// derived graphs (spec/Composition.h) and hand-crafted graphs in tests.
  void addRaw(EventId Id, Event E);

  /// Adds an so edge between two committed events.
  void addSo(EventId From, EventId To);

  unsigned size() const { return static_cast<unsigned>(Events.size()); }

  /// True if \p Id is committed (has a real event).
  bool isCommitted(EventId Id) const;

  /// The event for a committed id.
  const Event &event(EventId Id) const;

  const std::vector<SoEdge> &so() const { return So; }

  /// Local happens-before: e != d, both committed, and e is in d's logical
  /// view (Section 3.1's `(e, d) ∈ G.lhb`).
  bool lhb(EventId E, EventId D) const;

  /// Ids of committed events belonging to \p ObjId, in commit order.
  std::vector<EventId> objectEvents(unsigned ObjId) const;

  /// Ids of all committed events, in commit order.
  std::vector<EventId> committedEvents() const;

  /// The so-matches of \p Id (edges Id -> x).
  std::vector<EventId> soSuccessors(EventId Id) const;

  /// The so-predecessors of \p Id (edges x -> Id).
  std::vector<EventId> soPredecessors(EventId Id) const;

  /// For container objects: the consuming event matched to producer \p Id,
  /// if any. Asserts at most one exists.
  std::optional<EventId> matchOfProducer(EventId Id) const;

  /// For container objects: the producer matched to consumer \p Id.
  std::optional<EventId> matchOfConsumer(EventId Id) const;

  /// Structural sanity of the graph itself (independent of any library's
  /// consistency conditions): logical views only contain earlier-committed
  /// or own ids, logical views are transitively closed over committed
  /// events, so edges connect committed events, commit indices are unique.
  /// Returns an error description, or empty if well-formed.
  std::string checkWellFormed() const;

  std::string str() const;

private:
  enum class State : uint8_t { Reserved, Committed, Retracted };

  std::vector<Event> Events;
  std::vector<State> States;
  std::vector<SoEdge> So;
  uint32_t NextCommitIdx = 0;
  /// Ids whose state left Reserved (commit or retract), in order; popping
  /// one reverts the id to Reserved. Truncations handle everything else.
  std::vector<EventId> UndoLog;
};

} // namespace compass::graph

#endif // COMPASS_GRAPH_EVENTGRAPH_H
