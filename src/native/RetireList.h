//===-- native/RetireList.h - Deferred node reclamation ---------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free intrusive retire list: nodes unlinked from a concurrent
/// structure are pushed here instead of being freed, and are destroyed
/// when the owning container is destroyed (or when the single-owner
/// `drain()` is explicitly called at a quiescent point). This gives the
/// containers two properties at once:
///
///  * no ABA: node addresses are never reused while any operation may
///    still hold them;
///  * no use-after-free: readers may dereference unlinked nodes safely.
///
/// The cost is memory proportional to the number of operations between
/// quiescent points — the classic trade-off that hazard pointers / epochs
/// (the paper's future work, Section 6) refine.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_RETIRELIST_H
#define COMPASS_NATIVE_RETIRELIST_H

#include <atomic>

namespace compass::native {

/// Intrusive hook; nodes that can be retired embed one.
struct RetireHook {
  RetireHook *NextRetired = nullptr;
};

/// Lock-free LIFO of retired nodes. NodeT must derive from RetireHook.
template <typename NodeT> class RetireList {
public:
  RetireList() = default;
  RetireList(const RetireList &) = delete;
  RetireList &operator=(const RetireList &) = delete;

  ~RetireList() { drain(); }

  /// Retires \p N; thread-safe, lock-free.
  void retire(NodeT *N) {
    RetireHook *H = N;
    RetireHook *Old = Head.load(std::memory_order_relaxed);
    do {
      H->NextRetired = Old;
    } while (!Head.compare_exchange_weak(Old, H, std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  /// Frees all retired nodes. NOT thread-safe: call only when no
  /// concurrent operation can still hold a retired pointer (destructor,
  /// or an application-level quiescent point).
  void drain() {
    RetireHook *H = Head.exchange(nullptr, std::memory_order_acquire);
    while (H) {
      RetireHook *Next = H->NextRetired;
      delete static_cast<NodeT *>(H);
      H = Next;
    }
  }

  /// Number of retired nodes (O(n); diagnostics only).
  size_t size() const {
    size_t N = 0;
    for (RetireHook *H = Head.load(std::memory_order_acquire); H;
         H = H->NextRetired)
      ++N;
    return N;
  }

private:
  std::atomic<RetireHook *> Head{nullptr};
};

} // namespace compass::native

#endif // COMPASS_NATIVE_RETIRELIST_H
