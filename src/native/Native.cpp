//===-- native/Native.cpp - Anchor TU for the native library ---------------===//
//
// The native containers are header-only templates (see the headers in this
// directory); this translation unit anchors the static library and hosts
// non-template helpers.
//
//===----------------------------------------------------------------------===//

namespace compass::native {

// Currently all native components are header-only.

} // namespace compass::native
