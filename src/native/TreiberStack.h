//===-- native/TreiberStack.h - Treiber stack on std::atomic ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Treiber's lock-free stack on real C++ atomics with the paper's access
/// modes (Section 3.3): release CAS for push, acquire CAS for pop. Popped
/// nodes are retired (see RetireList.h), so no ABA hazard exists without
/// tagged pointers.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_TREIBERSTACK_H
#define COMPASS_NATIVE_TREIBERSTACK_H

#include "native/RetireList.h"

#include <atomic>
#include <optional>
#include <utility>

namespace compass::native {

/// Lock-free LIFO stack. T must be movable.
template <typename T> class TreiberStack {
  struct Node : RetireHook {
    Node *Next = nullptr;
    T Value;
    explicit Node(T V) : Value(std::move(V)) {}
  };

public:
  TreiberStack() = default;
  TreiberStack(const TreiberStack &) = delete;
  TreiberStack &operator=(const TreiberStack &) = delete;

  ~TreiberStack() {
    Node *N = Head.load(std::memory_order_relaxed);
    while (N) {
      Node *Next = N->Next;
      delete N;
      N = Next;
    }
  }

  /// Pushes \p V. Lock-free.
  void push(T V) {
    Node *N = new Node(std::move(V));
    N->Next = Head.load(std::memory_order_relaxed);
    while (!Head.compare_exchange_weak(N->Next, N,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Single push attempt; false on contention (the elimination stack's
  /// try_push', Section 4.1). The node is freed on failure.
  bool tryPush(T V) {
    Node *N = new Node(std::move(V));
    N->Next = Head.load(std::memory_order_relaxed);
    if (Head.compare_exchange_strong(N->Next, N, std::memory_order_release,
                                     std::memory_order_relaxed))
      return true;
    delete N;
    return false;
  }

  /// Pops the top element, or nullopt if the stack appears empty.
  std::optional<T> pop() {
    for (;;) {
      Node *N = Head.load(std::memory_order_acquire);
      if (!N)
        return std::nullopt;
      if (Head.compare_exchange_weak(N, N->Next,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        T Out = std::move(N->Value);
        Retired.retire(N);
        return Out;
      }
    }
  }

  /// Pop outcome for the single-attempt variant.
  enum class TryPopResult { Ok, Empty, Contended };

  /// Single pop attempt (the elimination stack's try_pop').
  TryPopResult tryPop(T &Out) {
    Node *N = Head.load(std::memory_order_acquire);
    if (!N)
      return TryPopResult::Empty;
    if (!Head.compare_exchange_strong(N, N->Next,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed))
      return TryPopResult::Contended;
    Out = std::move(N->Value);
    Retired.retire(N);
    return TryPopResult::Ok;
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) == nullptr;
  }

private:
  std::atomic<Node *> Head{nullptr};
  RetireList<Node> Retired;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_TREIBERSTACK_H
