//===-- native/Locked.h - Mutex-based baseline containers -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coarse-grained mutex-protected queue and stack: the sequentially
/// consistent baselines the performance experiments (P1/P2) compare the
/// relaxed structures against.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_LOCKED_H
#define COMPASS_NATIVE_LOCKED_H

#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace compass::native {

/// MPMC FIFO queue under a single mutex.
template <typename T> class MutexQueue {
public:
  void enqueue(T V) {
    std::lock_guard<std::mutex> Guard(M);
    Items.push_back(std::move(V));
  }

  std::optional<T> dequeue() {
    std::lock_guard<std::mutex> Guard(M);
    if (Items.empty())
      return std::nullopt;
    T Out = std::move(Items.front());
    Items.pop_front();
    return Out;
  }

  bool empty() const {
    std::lock_guard<std::mutex> Guard(M);
    return Items.empty();
  }

private:
  mutable std::mutex M;
  std::deque<T> Items;
};

/// LIFO stack under a single mutex.
template <typename T> class MutexStack {
public:
  void push(T V) {
    std::lock_guard<std::mutex> Guard(M);
    Items.push_back(std::move(V));
  }

  std::optional<T> pop() {
    std::lock_guard<std::mutex> Guard(M);
    if (Items.empty())
      return std::nullopt;
    T Out = std::move(Items.back());
    Items.pop_back();
    return Out;
  }

  bool empty() const {
    std::lock_guard<std::mutex> Guard(M);
    return Items.empty();
  }

private:
  mutable std::mutex M;
  std::vector<T> Items;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_LOCKED_H
