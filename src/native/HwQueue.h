//===-- native/HwQueue.h - Herlihy-Wing queue on std::atomic ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (relaxed) Herlihy-Wing array queue on real C++ atomics, mirroring
/// the simulated twin (lib/HwQueue.h): a release fetch-add claims a slot,
/// a release store publishes the element, dequeues acquire-scan and claim
/// with an acquire CAS. The capacity bounds the queue's *lifetime* enqueue
/// count — the faithful array formulation of the original algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_HWQUEUE_H
#define COMPASS_NATIVE_HWQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace compass::native {

/// Bounded-lifetime MPMC FIFO queue of pointers/integers. T must be a
/// trivially copyable type with two reserved representations (Empty and
/// Taken below); the default instantiation uses uint64_t with 0 and ~0.
template <typename T = uint64_t, T EmptyVal = T(0), T TakenVal = T(~0ull)>
class HwQueue {
public:
  explicit HwQueue(size_t Capacity) : Slots(Capacity) {
    for (auto &S : Slots)
      S.store(EmptyVal, std::memory_order_relaxed);
  }

  HwQueue(const HwQueue &) = delete;
  HwQueue &operator=(const HwQueue &) = delete;

  /// Enqueues \p V (must differ from the Empty/Taken sentinels). Fatal if
  /// the lifetime capacity is exhausted.
  void enqueue(T V) {
    assert(V != EmptyVal && V != TakenVal && "value collides with sentinel");
    size_t I = Back.fetch_add(1, std::memory_order_release);
    assert(I < Slots.size() && "HwQueue lifetime capacity exceeded");
    Slots[I].store(V, std::memory_order_release);
  }

  /// Dequeues, or returns nullopt after one fruitless scan.
  std::optional<T> dequeue() {
    size_t N = Back.load(std::memory_order_acquire);
    if (N > Slots.size())
      N = Slots.size();
    for (size_t I = 0; I != N; ++I) {
      T V = Slots[I].load(std::memory_order_acquire);
      if (V == EmptyVal || V == TakenVal)
        continue;
      if (Slots[I].compare_exchange_strong(V, TakenVal,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed))
        return V;
    }
    return std::nullopt;
  }

  size_t capacity() const { return Slots.size(); }

private:
  std::atomic<size_t> Back{0};
  std::vector<std::atomic<T>> Slots;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_HWQUEUE_H
