//===-- native/ElimStack.h - Elimination stack on std::atomic ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hendler-Shavit-Yerushalmi elimination stack on real C++ atomics,
/// composed from the native Treiber stack and exchanger exactly as
/// Section 4.1 prescribes: operations first try the base stack and on
/// contention try to eliminate against a dual operation through the
/// exchanger. No additional atomics are introduced by the composition.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_ELIMSTACK_H
#define COMPASS_NATIVE_ELIMSTACK_H

#include "native/Exchanger.h"
#include "native/TreiberStack.h"

#include <optional>
#include <utility>

namespace compass::native {

/// Lock-free LIFO stack with elimination backoff. T must be movable,
/// copyable and default-constructible.
template <typename T> class ElimStack {
  /// What travels through the exchanger: a value from a pusher, or the
  /// "SENTINEL" of a popper.
  struct XItem {
    bool IsPop = false;
    T Val{};
  };

public:
  ElimStack() = default;
  ElimStack(const ElimStack &) = delete;
  ElimStack &operator=(const ElimStack &) = delete;

  /// One round: base stack, then elimination. True if the push took
  /// effect.
  bool tryPush(T V) {
    if (Base.tryPush(V))
      return true;
    std::optional<XItem> Got = Ex.exchange(XItem{false, std::move(V)});
    return Got && Got->IsPop;
  }

  /// Pushes \p V, retrying rounds until it lands.
  void push(T V) {
    while (!tryPush(V)) {
    }
  }

  enum class TryPopResult { Ok, Empty, Contended };

  /// One round: base stack, then elimination.
  TryPopResult tryPop(T &Out) {
    typename TreiberStack<T>::TryPopResult R = Base.tryPop(Out);
    if (R == TreiberStack<T>::TryPopResult::Ok)
      return TryPopResult::Ok;
    if (R == TreiberStack<T>::TryPopResult::Empty)
      return TryPopResult::Empty;
    std::optional<XItem> Got = Ex.exchange(XItem{true, T{}});
    if (Got && !Got->IsPop) {
      Out = std::move(Got->Val);
      return TryPopResult::Ok;
    }
    return TryPopResult::Contended;
  }

  /// Pops, retrying contended rounds; nullopt when the stack appears
  /// empty.
  std::optional<T> pop() {
    for (;;) {
      T Out{};
      TryPopResult R = tryPop(Out);
      if (R == TryPopResult::Ok)
        return Out;
      if (R == TryPopResult::Empty)
        return std::nullopt;
    }
  }

  bool empty() const { return Base.empty(); }

private:
  TreiberStack<T> Base;
  Exchanger<XItem> Ex;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_ELIMSTACK_H
