//===-- native/TreiberStackEbr.h - Treiber stack with EBR -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Treiber stack with online epoch-based reclamation: unlike
/// TreiberStack.h (whose retire list grows until destruction), popped
/// nodes here are freed as epochs turn over, bounding memory by the
/// number of in-flight operations — the reclamation story the paper's
/// Section 6 points to as future work. Each thread registers once via
/// registerThread() before operating.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_TREIBERSTACKEBR_H
#define COMPASS_NATIVE_TREIBERSTACKEBR_H

#include "native/Ebr.h"

#include <atomic>
#include <optional>
#include <utility>

namespace compass::native {

/// Lock-free LIFO stack with epoch-based reclamation.
template <typename T> class TreiberStackEbr {
  struct Node : RetireHook {
    Node *Next = nullptr;
    T Value;
    explicit Node(T V) : Value(std::move(V)) {}
  };

public:
  using Domain = EbrDomain<Node>;
  using ThreadHandle = typename Domain::Participant;

  TreiberStackEbr() = default;
  TreiberStackEbr(const TreiberStackEbr &) = delete;
  TreiberStackEbr &operator=(const TreiberStackEbr &) = delete;

  ~TreiberStackEbr() {
    Node *N = Head.load(std::memory_order_relaxed);
    while (N) {
      Node *Next = N->Next;
      delete N;
      N = Next;
    }
  }

  /// Registers the calling thread; keep the handle alive while the thread
  /// uses the stack.
  ThreadHandle registerThread() { return ThreadHandle(Reclaimer); }

  void push(ThreadHandle &H, T V) {
    typename Domain::Guard G(H);
    Node *N = new Node(std::move(V));
    N->Next = Head.load(std::memory_order_relaxed);
    while (!Head.compare_exchange_weak(N->Next, N,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

  std::optional<T> pop(ThreadHandle &H) {
    typename Domain::Guard G(H);
    for (;;) {
      Node *N = Head.load(std::memory_order_acquire);
      if (!N)
        return std::nullopt;
      // Safe to dereference: we are pinned, so N cannot be freed even if
      // another thread pops and retires it concurrently.
      if (Head.compare_exchange_weak(N, N->Next,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        T Out = std::move(N->Value);
        Reclaimer.retire(N);
        return Out;
      }
    }
  }

  /// Reclamation statistics (diagnostics).
  uint64_t nodesFreedOnline() const { return Reclaimer.freedApprox(); }
  uint64_t nodesPending() const { return Reclaimer.pendingApprox(); }
  uint64_t epochsTurned() const { return Reclaimer.epoch(); }

private:
  std::atomic<Node *> Head{nullptr};
  Domain Reclaimer;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_TREIBERSTACKEBR_H
