//===-- native/MsQueue.h - Michael-Scott queue on std::atomic ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Michael-Scott non-blocking MPMC queue [Michael & Scott, PODC'96]
/// on real C++ atomics, with exactly the release/acquire discipline the
/// simulated twin (lib/MsQueue.h) model-checks: enqueue publishes with a
/// release CAS on next, dequeue synchronizes with an acquire load and
/// advances head with acq_rel. Dequeued nodes are retired, not freed
/// (RetireList.h), so the structure is ABA- and UAF-free without tagged
/// pointers.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_MSQUEUE_H
#define COMPASS_NATIVE_MSQUEUE_H

#include "native/RetireList.h"

#include <atomic>
#include <optional>
#include <utility>

namespace compass::native {

/// Lock-free MPMC FIFO queue. T must be movable.
template <typename T> class MsQueue {
  struct Node : RetireHook {
    std::atomic<Node *> Next{nullptr};
    T Value{};

    Node() = default;
    explicit Node(T V) : Value(std::move(V)) {}
  };

public:
  MsQueue() {
    Node *Sentinel = new Node();
    Head.store(Sentinel, std::memory_order_relaxed);
    Tail.store(Sentinel, std::memory_order_relaxed);
  }

  MsQueue(const MsQueue &) = delete;
  MsQueue &operator=(const MsQueue &) = delete;

  ~MsQueue() {
    // Free the remaining list (sentinel included), then the retired nodes.
    Node *N = Head.load(std::memory_order_relaxed);
    while (N) {
      Node *Next = N->Next.load(std::memory_order_relaxed);
      delete N;
      N = Next;
    }
  }

  /// Enqueues \p V at the tail. Lock-free.
  void enqueue(T V) {
    Node *N = new Node(std::move(V));
    for (;;) {
      Node *Last = Tail.load(std::memory_order_acquire);
      Node *Next = Last->Next.load(std::memory_order_acquire);
      if (Next) {
        // Tail lags; help advance it.
        Tail.compare_exchange_weak(Last, Next, std::memory_order_release,
                                   std::memory_order_relaxed);
        continue;
      }
      Node *Expected = nullptr;
      if (Last->Next.compare_exchange_weak(Expected, N,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        Tail.compare_exchange_strong(Last, N, std::memory_order_release,
                                     std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Dequeues the head element, or nullopt if the queue appears empty.
  std::optional<T> dequeue() {
    for (;;) {
      Node *First = Head.load(std::memory_order_acquire);
      Node *Next = First->Next.load(std::memory_order_acquire);
      if (!Next)
        return std::nullopt;
      if (Head.compare_exchange_weak(First, Next,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        T Out = std::move(Next->Value);
        Retired.retire(First);
        return Out;
      }
    }
  }

  /// True if the queue appears empty to this thread.
  bool empty() const {
    Node *First = Head.load(std::memory_order_acquire);
    return First->Next.load(std::memory_order_acquire) == nullptr;
  }

private:
  std::atomic<Node *> Head;
  std::atomic<Node *> Tail;
  RetireList<Node> Retired;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_MSQUEUE_H
