//===-- native/Ebr.h - Epoch-based memory reclamation -----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR, Fraser '04) — the "safe memory
/// reclamation schemes for lock-free data structures" the paper's
/// Section 6 lists as future work, provided for the native library so
/// long-running structures can free memory online instead of deferring
/// everything to destruction (RetireList.h).
///
/// The classic three-epoch scheme: readers *pin* the domain around every
/// access to shared nodes (announcing the global epoch), writers *retire*
/// unlinked nodes into the current epoch's bin, and the epoch advances
/// when no pinned participant still announces an older epoch — at which
/// point the bin from two epochs ago is unreachable and is freed.
///
/// A domain reclaims nodes of one type (the usual case: one domain per
/// container). Usage:
/// \code
///   EbrDomain<Node> D;
///   EbrDomain<Node>::Participant P(D);          // One per thread.
///   {
///     EbrDomain<Node>::Guard G(P);              // Pin.
///     Node *N = Head.load(std::memory_order_acquire);
///     ... dereference N safely ...
///     D.retire(Unlinked);                       // After unlinking.
///   }                                           // Unpin.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_EBR_H
#define COMPASS_NATIVE_EBR_H

#include "native/RetireList.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <type_traits>

namespace compass::native {

/// An epoch-based reclamation domain for nodes of type \p NodeT (which
/// must derive from RetireHook).
template <typename NodeT> class EbrDomain {
  static_assert(std::is_base_of_v<RetireHook, NodeT>,
                "retired nodes must embed a RetireHook");

public:
  static constexpr unsigned MaxParticipants = 64;

  EbrDomain() = default;
  EbrDomain(const EbrDomain &) = delete;
  EbrDomain &operator=(const EbrDomain &) = delete;

  ~EbrDomain() {
    for (Bin &B : Bins)
      freeBin(B);
  }

  /// A registered thread; the slot is released on destruction.
  class Participant {
  public:
    explicit Participant(EbrDomain &D) : D(D) {
      for (unsigned I = 0; I != MaxParticipants; ++I) {
        bool Expected = false;
        if (D.Slots[I].Used.compare_exchange_strong(
                Expected, true, std::memory_order_acq_rel)) {
          Index = I;
          return;
        }
      }
      assert(false && "EbrDomain participant slots exhausted");
    }

    ~Participant() {
      D.Slots[Index].Active.store(false, std::memory_order_release);
      D.Slots[Index].Used.store(false, std::memory_order_release);
    }

    Participant(const Participant &) = delete;
    Participant &operator=(const Participant &) = delete;

  private:
    friend class EbrDomain;
    EbrDomain &D;
    unsigned Index = 0;
  };

  /// RAII pin: while alive, nodes this thread may observe are not freed.
  class Guard {
  public:
    explicit Guard(Participant &P) : D(P.D), Index(P.Index) {
      uint64_t E = D.GlobalEpoch.load(std::memory_order_acquire);
      D.Slots[Index].Epoch.store(E, std::memory_order_relaxed);
      D.Slots[Index].Active.store(true, std::memory_order_relaxed);
      // The announcement must be ordered before any shared read; pairs
      // with the fence in tryAdvance.
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    ~Guard() {
      D.Slots[Index].Active.store(false, std::memory_order_release);
    }

    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    EbrDomain &D;
    unsigned Index;
  };

  /// Retires \p N (already unlinked; caller pinned) into the current
  /// epoch's bin and opportunistically tries to advance the epoch.
  void retire(NodeT *N) {
    RetireHook *H = N;
    uint64_t E = GlobalEpoch.load(std::memory_order_acquire);
    Bin &B = Bins[E % 3];
    RetireHook *Old = B.Head.load(std::memory_order_relaxed);
    do {
      H->NextRetired = Old;
    } while (!B.Head.compare_exchange_weak(Old, H,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
    Pending.fetch_add(1, std::memory_order_relaxed);
    tryAdvance();
  }

  /// Number of epoch advances so far (diagnostics).
  uint64_t epoch() const {
    return GlobalEpoch.load(std::memory_order_relaxed);
  }

  /// Nodes currently awaiting reclamation (diagnostics; approximate).
  uint64_t pendingApprox() const {
    return Pending.load(std::memory_order_relaxed);
  }

  /// Total nodes actually freed so far (diagnostics; approximate).
  uint64_t freedApprox() const {
    return Freed.load(std::memory_order_relaxed);
  }

private:
  struct Slot {
    std::atomic<bool> Used{false};
    std::atomic<bool> Active{false};
    std::atomic<uint64_t> Epoch{0};
    char Pad[40]; ///< Spread slots across cache lines (approximately).
  };

  struct Bin {
    std::atomic<RetireHook *> Head{nullptr};
  };

  void tryAdvance() {
    uint64_t E = GlobalEpoch.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (const Slot &S : Slots) {
      if (!S.Used.load(std::memory_order_acquire))
        continue;
      if (S.Active.load(std::memory_order_acquire) &&
          S.Epoch.load(std::memory_order_acquire) != E)
        return; // A reader is still pinned in an older epoch.
    }
    if (!GlobalEpoch.compare_exchange_strong(E, E + 1,
                                             std::memory_order_acq_rel))
      return; // Someone else advanced; they will free their bin.
    // Epoch E+1 begun: free the bin E+1 will retire into — its contents
    // are from epoch E-2, two full grace periods old, so even a retire
    // performed with a stale epoch announcement (by a writer pinned at E)
    // cannot still be referenced.
    freeBin(Bins[(E + 1) % 3]);
  }

  void freeBin(Bin &B) {
    RetireHook *H = B.Head.exchange(nullptr, std::memory_order_acquire);
    while (H) {
      RetireHook *Next = H->NextRetired;
      delete static_cast<NodeT *>(H);
      Pending.fetch_sub(1, std::memory_order_relaxed);
      Freed.fetch_add(1, std::memory_order_relaxed);
      H = Next;
    }
  }

  std::atomic<uint64_t> GlobalEpoch{0};
  std::atomic<uint64_t> Pending{0};
  std::atomic<uint64_t> Freed{0};
  Slot Slots[MaxParticipants];
  Bin Bins[3];
};

} // namespace compass::native

#endif // COMPASS_NATIVE_EBR_H
