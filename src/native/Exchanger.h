//===-- native/Exchanger.h - Elimination exchanger on std::atomic -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-slot exchange channel in the Scherer-Lea-Scott style, matching
/// the simulated twin (lib/Exchanger.h): a thread installs an offer node
/// with a release CAS, a partner *helps* by CASing the offer's hole to its
/// own node — the single instruction that commits both exchanges (the
/// paper's Section 4.2 helping pattern) — and an unmatched offer is
/// withdrawn by CASing the hole to the cancel sentinel. Nodes are retired,
/// never reused, so no ABA arises.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_EXCHANGER_H
#define COMPASS_NATIVE_EXCHANGER_H

#include "native/RetireList.h"

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <utility>

namespace compass::native {

/// Lock-free pairwise exchanger. T must be copyable and default-
/// constructible (for the internal cancel sentinel).
template <typename T> class Exchanger {
  struct Node : RetireHook {
    T Value{};
    /// nullptr = pending; &Cancel = withdrawn; else the partner's node.
    std::atomic<Node *> Hole{nullptr};

    Node() = default;
    explicit Node(T V) : Value(std::move(V)) {}
  };

public:
  Exchanger() = default;
  Exchanger(const Exchanger &) = delete;
  Exchanger &operator=(const Exchanger &) = delete;

  /// Attempts to exchange \p V with a concurrent caller. \p Attempts
  /// bounds install/match rounds; \p Spins bounds the wait for a partner
  /// after installing an offer. Returns the partner's value, or nullopt.
  ///
  /// Every round exposes a *fresh* node (installed as an offer or CASed
  /// into a hole): once another thread may have seen a node it is never
  /// reused, only retired — a cancelled offer's hole stays cancelled.
  std::optional<T> exchange(T V, unsigned Attempts = 1,
                            unsigned Spins = 64) {
    for (unsigned Round = 0; Round != Attempts; ++Round) {
      Node *Off = Slot.load(std::memory_order_acquire);
      if (!Off) {
        Node *Mine = new Node(V);
        Node *Expected = nullptr;
        if (!Slot.compare_exchange_strong(Expected, Mine,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
          delete Mine; // Never exposed.
          continue;    // Lost the install race; retry the round.
        }

        // Installed: wait briefly for a partner, then withdraw. Yield
        // periodically so a partner gets cycles even on few-core hosts.
        Node *H = nullptr;
        for (unsigned I = 0; I != Spins; ++I) {
          H = Mine->Hole.load(std::memory_order_acquire);
          if (H)
            break;
          if ((I & 63) == 63)
            std::this_thread::yield();
        }
        if (!H) {
          Node *ExpHole = nullptr;
          if (Mine->Hole.compare_exchange_strong(
                  ExpHole, &Cancel, std::memory_order_relaxed,
                  std::memory_order_acquire)) {
            Slot.compare_exchange_strong(Mine, nullptr,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed);
            Retired.retire(Mine);
            continue; // Withdrawn; next round.
          }
          H = Mine->Hole.load(std::memory_order_acquire);
        }
        Node *Me = Mine;
        Slot.compare_exchange_strong(Me, nullptr,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
        T Out = H->Value;
        Retired.retire(Mine);
        return Out;
      }

      // Offer present: try to be the helper. The release CAS on the hole
      // is the commit point of *both* exchanges.
      Node *Fill = new Node(V);
      Node *ExpHole = nullptr;
      if (Off->Hole.compare_exchange_strong(ExpHole, Fill,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        Slot.compare_exchange_strong(Off, nullptr,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
        T Out = Off->Value;
        Retired.retire(Fill); // The partner still reads it; freed later.
        return Out;
      }
      delete Fill; // Never exposed.
      // Already matched or withdrawn; help clear the slot and retry.
      Slot.compare_exchange_strong(Off, nullptr,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
    }
    return std::nullopt;
  }

private:

  std::atomic<Node *> Slot{nullptr};
  Node Cancel;
  RetireList<Node> Retired;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_EXCHANGER_H
