//===-- native/WsDeque.h - Chase-Lev deque on std::atomic -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chase-Lev work-stealing deque with the C11 orderings of Lê, Pop,
/// Cohen & Zappa Nardelli [PPoPP'13] — the paper's Section 6 future-work
/// library, mirrored from the verified simulated twin (lib/WsDeque.h).
/// One owner pushes/takes at the bottom; thieves steal from the top. The
/// buffer is a fixed-capacity ring (no growth): push fails when the ring
/// is full, which the owner handles by draining.
///
/// T must be trivially copyable (elements live in std::atomic slots).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_WSDEQUE_H
#define COMPASS_NATIVE_WSDEQUE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace compass::native {

template <typename T> class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements live in atomic slots");

public:
  explicit WsDeque(size_t Capacity) : Buf(Capacity) {
    assert(Capacity > 0);
  }

  WsDeque(const WsDeque &) = delete;
  WsDeque &operator=(const WsDeque &) = delete;

  /// Owner: pushes \p V at the bottom; false if the ring is full.
  bool push(T V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    if (B - Tp >= static_cast<int64_t>(Buf.size()))
      return false;
    Buf[static_cast<size_t>(B) % Buf.size()].store(
        V, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner: takes from the bottom; nullopt when empty.
  std::optional<T> take() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    if (Tp > B) {
      Bottom.store(B + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T V = Buf[static_cast<size_t>(B) % Buf.size()].load(
        std::memory_order_relaxed);
    if (Tp != B)
      return V; // More than one element: the bottom is owner-exclusive.
    // Last element: race thieves with an SC CAS.
    bool Won = Top.compare_exchange_strong(Tp, Tp + 1,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_relaxed);
    if (!Won)
      return std::nullopt;
    return V;
  }

  /// Outcome of a steal attempt.
  enum class StealResult { Ok, Empty, Lost };

  /// Thief: steals from the top.
  StealResult steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (Tp >= B)
      return StealResult::Empty;
    Out = Buf[static_cast<size_t>(Tp) % Buf.size()].load(
        std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(Tp, Tp + 1,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return StealResult::Lost;
    return StealResult::Ok;
  }

  /// Approximate size (diagnostics).
  int64_t sizeApprox() const {
    return Bottom.load(std::memory_order_relaxed) -
           Top.load(std::memory_order_relaxed);
  }

private:
  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::vector<std::atomic<T>> Buf;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_WSDEQUE_H
