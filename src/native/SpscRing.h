//===-- native/SpscRing.h - Lock-free SPSC ring on std::atomic --*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lamport-style single-producer single-consumer ring buffer on real
/// atomics, mirroring the verified twin (lib/SpscRing.h): no RMWs, only
/// release/acquire index handoff; slots are plain storage whose ownership
/// alternates between the two threads.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_NATIVE_SPSCRING_H
#define COMPASS_NATIVE_SPSCRING_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace compass::native {

/// Wait-free SPSC FIFO ring. Exactly one producer thread may call
/// enqueue-side methods and exactly one consumer thread dequeue-side
/// methods.
template <typename T> class SpscRing {
public:
  explicit SpscRing(size_t Capacity) : Buf(Capacity) {
    assert(Capacity > 0);
  }

  SpscRing(const SpscRing &) = delete;
  SpscRing &operator=(const SpscRing &) = delete;

  /// Producer: false when full.
  bool tryEnqueue(T V) {
    uint64_t Tl = Tail.load(std::memory_order_relaxed);
    uint64_t H = Head.load(std::memory_order_acquire);
    if (Tl - H == Buf.size())
      return false;
    Buf[Tl % Buf.size()] = std::move(V);
    Tail.store(Tl + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: nullopt when empty.
  std::optional<T> dequeue() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t Tl = Tail.load(std::memory_order_acquire);
    if (H == Tl)
      return std::nullopt;
    T Out = std::move(Buf[H % Buf.size()]);
    Head.store(H + 1, std::memory_order_release);
    return Out;
  }

  /// Elements currently buffered, as seen by the caller.
  uint64_t sizeApprox() const {
    return Tail.load(std::memory_order_acquire) -
           Head.load(std::memory_order_acquire);
  }

  size_t capacity() const { return Buf.size(); }

private:
  std::atomic<uint64_t> Head{0};
  std::atomic<uint64_t> Tail{0};
  std::vector<T> Buf;
};

} // namespace compass::native

#endif // COMPASS_NATIVE_SPSCRING_H
