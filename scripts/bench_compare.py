#!/usr/bin/env python3
"""Compare a fresh BENCH_simulator.json against the committed baseline.

Matches scaling rows on (workload, workers) and reduction rows on
(workload, reduction), then compares throughput (execs_per_sec). By
default the script only *reports*: regressions beyond the threshold are
printed as GitHub Actions `::warning::` annotations and the exit code
stays 0, so a noisy CI runner cannot block a merge. Pass --strict to turn
regressions into a nonzero exit (for local perf work).

Usage:
  scripts/bench_compare.py NEW.json BASELINE.json [--threshold 0.20]
                           [--strict]
"""

import argparse
import json
import sys


def rows_by_key(report):
    """Maps row-key -> row for both the scaling and reduction tables."""
    out = {}
    for row in report.get("rows", []):
        out[("scaling", row["workload"], row["workers"])] = row
    for row in report.get("reduction_rows", []):
        out[("reduction", row["workload"], row["reduction"])] = row
    return out


def fmt_key(key):
    kind, workload, variant = key
    unit = "workers" if kind == "scaling" else "reduction"
    return f"{workload} [{unit}={variant}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="freshly generated BENCH_simulator.json")
    ap.add_argument("baseline", help="committed baseline BENCH_simulator.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative execs/sec drop that counts as a regression "
        "(default 0.20 = 20%%)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when a regression is found (default: report only)",
    )
    args = ap.parse_args()

    with open(args.new) as f:
        new = rows_by_key(json.load(f))
    with open(args.baseline) as f:
        base = rows_by_key(json.load(f))

    regressions = []
    improvements = []
    for key, brow in sorted(base.items()):
        nrow = new.get(key)
        if nrow is None:
            print(f"::warning::bench_compare: row missing from new run: "
                  f"{fmt_key(key)}")
            continue
        b, n = brow.get("execs_per_sec", 0.0), nrow.get("execs_per_sec", 0.0)
        if b <= 0:
            continue
        delta = (n - b) / b
        line = (f"{fmt_key(key)}: {b:,.0f} -> {n:,.0f} execs/sec "
                f"({delta:+.1%})")
        if delta < -args.threshold:
            regressions.append(line)
        elif delta > args.threshold:
            improvements.append(line)
        else:
            print(f"  ok  {line}")

    for line in improvements:
        print(f"  IMPROVED  {line}")
    for line in regressions:
        # Non-blocking by default: annotate, do not fail the job.
        print(f"::warning::bench_compare regression: {line}")

    for key in sorted(set(new) - set(base)):
        print(f"  new row (no baseline): {fmt_key(key)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} (non-blocking"
              f"{'' if not args.strict else ', but --strict is set'})")
        return 1 if args.strict else 0
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
