#!/usr/bin/env python3
"""Compare a fresh BENCH_simulator.json against the committed baseline.

Matches scaling rows on (workload, workers) and reduction rows on
(workload, reduction), then compares throughput (execs_per_sec). By
default the script only *reports*: regressions beyond the threshold are
printed as GitHub Actions `::warning::` annotations and the exit code
stays 0, so a noisy CI runner cannot block a merge. Pass --strict to turn
regressions into a nonzero exit (for local perf work).

Robustness contract (pinned by --self-test):
  * multi-worker scaling rows are exempt from regression checks when the
    fresh run's machine has fewer hardware threads than the row's worker
    count (an oversubscribed run measures scheduler thrash, not the
    engine — its "speedup" is noise by construction);
  * rows missing a key field (workload/workers/reduction) are reported
    and skipped, never a KeyError;
  * a zero, null, or missing baseline metric reports "no usable
    baseline" and skips the ratio, never a division/TypeError crash;
  * rows present on only one side are reported as "removed" / "new";
  * unreadable or malformed JSON inputs exit 2 with a clean message.

Usage:
  scripts/bench_compare.py NEW.json BASELINE.json [--threshold 0.20]
                           [--strict]
  scripts/bench_compare.py --self-test
"""

import argparse
import json
import sys


def rows_by_key(report, label="report"):
    """Maps row-key -> row for both the scaling and reduction tables.

    Malformed rows (not a dict, or missing the fields that make up the
    key) are reported on stdout and skipped instead of raising.
    """
    out = {}
    if not isinstance(report, dict):
        print(f"::warning::bench_compare: {label}: top level is not an "
              "object; treating as empty")
        return out
    for table, field in (("rows", "workers"), ("reduction_rows", "reduction")):
        kind = "scaling" if table == "rows" else "reduction"
        rows = report.get(table, [])
        if not isinstance(rows, list):
            print(f"::warning::bench_compare: {label}: '{table}' is not a "
                  "list; skipping table")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or "workload" not in row \
                    or field not in row:
                print(f"::warning::bench_compare: {label}: {table}[{i}] "
                      f"lacks workload/{field}; skipping row")
                continue
            out[(kind, str(row["workload"]), str(row[field]))] = row
    return out


def metric(row):
    """Returns execs_per_sec as a positive float, or None when the metric
    is missing, null, non-numeric, or non-positive (a zero baseline means
    the run produced no signal; a ratio against it is meaningless)."""
    v = row.get("execs_per_sec")
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        return None
    return float(v) if v > 0 else None


def fmt_key(key):
    kind, workload, variant = key
    unit = "workers" if kind == "scaling" else "reduction"
    return f"{workload} [{unit}={variant}]"


def hardware_threads(report):
    """The fresh run's hardware thread count, or None when absent/bogus."""
    if not isinstance(report, dict):
        return None
    v = report.get("hardware_threads")
    if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 1:
        return None
    return int(v)


def oversubscribed(key, hw, nrow=None):
    """True for a multi-worker scaling row run on a machine with fewer
    hardware threads than workers: its throughput measures scheduler
    thrash, not the engine, so it is exempt from regression checks.

    Newer reports stamp each scaling row with an `oversubscribed` boolean
    at produce time (the producing machine knows its own thread count even
    when the report is compared elsewhere); that stamp wins when present.
    The hardware_threads inference remains as a fallback for reports
    produced before the stamp existed."""
    if isinstance(nrow, dict):
        stamp = nrow.get("oversubscribed")
        if isinstance(stamp, bool):
            return stamp
    kind, _workload, variant = key
    if kind != "scaling" or hw is None:
        return False
    try:
        workers = int(variant)
    except ValueError:
        return False
    return workers > 1 and workers > hw


def compare(new, base, threshold, strict, hw=None):
    """Core comparison over two key->row maps; returns the exit code."""
    regressions = []
    improvements = []
    for key, brow in sorted(base.items()):
        nrow = new.get(key)
        if nrow is None:
            print(f"  removed (no new row): {fmt_key(key)}")
            continue
        if oversubscribed(key, hw, nrow):
            print(f"  skipped (oversubscribed): {fmt_key(key)}")
            continue
        b, n = metric(brow), metric(nrow)
        if b is None:
            print(f"  no usable baseline metric (zero/missing), "
                  f"skipping ratio: {fmt_key(key)}")
            continue
        if n is None:
            line = f"{fmt_key(key)}: {b:,.0f} -> 0 execs/sec (new run dead)"
            regressions.append(line)
            continue
        delta = (n - b) / b
        line = (f"{fmt_key(key)}: {b:,.0f} -> {n:,.0f} execs/sec "
                f"({delta:+.1%})")
        if delta < -threshold:
            regressions.append(line)
        elif delta > threshold:
            improvements.append(line)
        else:
            print(f"  ok  {line}")

    for line in improvements:
        print(f"  IMPROVED  {line}")
    for line in regressions:
        # Non-blocking by default: annotate, do not fail the job.
        print(f"::warning::bench_compare regression: {line}")

    for key in sorted(set(new) - set(base)):
        print(f"  new row (no baseline): {fmt_key(key)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold:.0%} (non-blocking"
              f"{'' if not strict else ', but --strict is set'})")
        return 1 if strict else 0
    print("\nno regressions beyond threshold")
    return 0


def load_report(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


# ---------------------------------------------------------------------------
# Self-test: synthetic reports exercising every robustness branch above.
# Invoked from CI so a regression in this script fails fast, without
# needing a real benchmark run.
# ---------------------------------------------------------------------------

def self_test():
    import contextlib
    import io

    failures = []

    def check(name, cond):
        print(f"  {'PASS' if cond else 'FAIL'}  {name}")
        if not cond:
            failures.append(name)

    def run(new_report, base_report, threshold=0.20, strict=False):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            code = compare(rows_by_key(new_report, "new"),
                           rows_by_key(base_report, "baseline"),
                           threshold, strict,
                           hw=hardware_threads(new_report))
        return code, buf.getvalue()

    def row(workload, workers, eps):
        return {"workload": workload, "workers": workers,
                "execs_per_sec": eps}

    base = {"rows": [row("queue", 2, 1000.0), row("stack", 2, 500.0)],
            "reduction_rows": [{"workload": "queue", "reduction": "sleep",
                                "execs_per_sec": 800.0}]}

    # 1. Identical reports: clean pass.
    code, out = run(base, base)
    check("identical reports exit 0", code == 0)
    check("identical reports report ok rows", out.count("  ok  ") == 3)

    # 2. Regression detected; non-strict stays 0, strict exits 1.
    slow = {"rows": [row("queue", 2, 100.0), row("stack", 2, 500.0)],
            "reduction_rows": base["reduction_rows"]}
    code, out = run(slow, base)
    check("regression non-strict exits 0", code == 0)
    check("regression annotated", "::warning::bench_compare regression" in out)
    code, _ = run(slow, base, strict=True)
    check("regression strict exits 1", code == 1)

    # 3. Zero / null / missing baseline metric: skipped, no crash.
    #    (Pre-fix: null compared against 0 raised TypeError.)
    zero = {"rows": [row("queue", 2, 0.0), row("stack", 2, None),
                     {"workload": "ws", "workers": 2}]}
    code, out = run({"rows": [row("queue", 2, 50.0), row("stack", 2, 50.0),
                              row("ws", 2, 50.0)]}, zero)
    check("zero/null/missing baseline exits 0", code == 0)
    check("zero baseline skips ratio",
          out.count("no usable baseline metric") == 3)

    # 4. Baseline healthy but new run produced no throughput: regression.
    code, out = run({"rows": [row("queue", 2, 0.0)]},
                    {"rows": [row("queue", 2, 1000.0)]}, strict=True)
    check("dead new run is a strict regression", code == 1)
    check("dead new run annotated", "new run dead" in out)

    # 5. Rows added/removed between baseline and fresh run.
    #    (Pre-fix: a row missing 'workers' raised KeyError.)
    code, out = run({"rows": [row("queue", 2, 1000.0),
                              row("queue", 4, 1900.0)]},
                    {"rows": [row("queue", 2, 1000.0),
                              row("stack", 2, 500.0)]})
    check("added/removed rows exit 0", code == 0)
    check("removed row reported", "removed (no new row): stack" in out)
    check("new row reported", "new row (no baseline): queue" in out)

    # 6. Malformed rows (missing key fields, wrong shapes) are skipped.
    mangled = {"rows": [{"workers": 2, "execs_per_sec": 10.0},
                        {"workload": "q"}, "not-a-dict",
                        row("queue", 2, 1000.0)],
               "reduction_rows": "nope"}
    code, out = run(mangled, base)
    check("malformed rows exit 0", code == 0)
    check("malformed rows reported", out.count("skipping row") == 3)
    check("malformed table reported", "skipping table" in out)

    # 7. Non-object top level degrades to an empty report.
    code, out = run([1, 2, 3], base)
    check("non-object report exits 0", code == 0)

    # 8. Oversubscribed scaling rows (workers > the fresh run's hardware
    #    threads) are exempt from regression checks even under --strict;
    #    serial rows and reduction rows on the same machine still count.
    one_core_slow = {"hardware_threads": 1,
                     "rows": [row("queue", 1, 1000.0),
                              row("queue", 4, 100.0)],
                     "reduction_rows": base["reduction_rows"]}
    one_core_base = {"rows": [row("queue", 1, 1000.0),
                              row("queue", 4, 1900.0)],
                     "reduction_rows": base["reduction_rows"]}
    code, out = run(one_core_slow, one_core_base, strict=True)
    check("oversubscribed regression exits 0", code == 0)
    check("oversubscribed row reported skipped",
          "skipped (oversubscribed" in out)
    serial_slow = {"hardware_threads": 1,
                   "rows": [row("queue", 1, 100.0),
                            row("queue", 4, 1900.0)],
                   "reduction_rows": base["reduction_rows"]}
    code, out = run(serial_slow, one_core_base, strict=True)
    check("serial regression still strict-fails on 1 core", code == 1)
    plenty = {"hardware_threads": 8,
              "rows": [row("queue", 1, 1000.0), row("queue", 4, 100.0)],
              "reduction_rows": base["reduction_rows"]}
    code, out = run(plenty, one_core_base, strict=True)
    check("4-worker regression counts with 8 hardware threads", code == 1)

    # 9. Rows stamped `oversubscribed` at produce time: the stamp wins over
    #    the hardware_threads inference in both directions, so a report
    #    compared on a different machine keeps the producing machine's
    #    verdict.
    def stamped(workload, workers, eps, over):
        r = row(workload, workers, eps)
        r["oversubscribed"] = over
        return r
    stamped_true = {"hardware_threads": 8,
                    "rows": [row("queue", 1, 1000.0),
                             stamped("queue", 4, 100.0, True)],
                    "reduction_rows": base["reduction_rows"]}
    code, out = run(stamped_true, one_core_base, strict=True)
    check("stamped-true row skipped despite ample threads", code == 0)
    check("stamped-true row reported skipped",
          "skipped (oversubscribed)" in out)
    stamped_false = {"hardware_threads": 1,
                     "rows": [row("queue", 1, 1000.0),
                              stamped("queue", 4, 100.0, False)],
                     "reduction_rows": base["reduction_rows"]}
    code, out = run(stamped_false, one_core_base, strict=True)
    check("stamped-false row counts despite 1 thread", code == 1)

    if failures:
        print(f"\nself-test FAILED: {len(failures)} check(s)")
        return 1
    print("\nself-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", nargs="?",
                    help="freshly generated BENCH_simulator.json")
    ap.add_argument("baseline", nargs="?",
                    help="committed baseline BENCH_simulator.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative execs/sec drop that counts as a regression "
        "(default 0.20 = 20%%)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when a regression is found (default: report only)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in self-test on synthetic reports and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.new is None or args.baseline is None:
        ap.error("NEW and BASELINE are required unless --self-test is given")

    new_report = load_report(args.new)
    new = rows_by_key(new_report, "new")
    base = rows_by_key(load_report(args.baseline), "baseline")
    return compare(new, base, args.threshold, args.strict,
                   hw=hardware_threads(new_report))


if __name__ == "__main__":
    sys.exit(main())
