#!/usr/bin/env python3
"""Render a compass_check sweep telemetry stream (JSONL) as a report.

The stream is produced by `compass_check sweep --telemetry FILE`: one JSON
object per line, flushed per record, so a killed run still leaves a
readable prefix. A truncated final line (the process died mid-write) is
expected and skipped with a note. See src/check/Telemetry.h for the
record schema.

Sections:
  * configuration  — from the run_start record(s); a file holds several
    when runs append to the same path (each resume adds one);
  * progress       — execs/sec over time from heartbeat records, with a
    small ASCII sparkline, queue/busy-worker extremes, and per-worker
    donation totals;
  * violations     — every violation record with its replayable decision
    trace (feed to `compass_check replay`);
  * checkpoints    — when/why checkpoints were cut;
  * outcome        — the run_end record (fingerprint, totals), or a
    diagnosis that the stream ended without one (killed run).

Usage:
  scripts/telemetry_report.py TELEMETRY.jsonl [--json]
"""

import argparse
import json
import sys

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, width=60):
    if not values:
        return ""
    # Downsample to `width` buckets by averaging.
    if len(values) > width:
        step = len(values) / width
        values = [
            sum(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))]) /
            max(1, len(values[int(i * step):max(int(i * step) + 1,
                                                int((i + 1) * step))]))
            for i in range(width)
        ]
    hi = max(values) or 1.0
    return "".join(SPARK[min(len(SPARK) - 1,
                             int(v / hi * (len(SPARK) - 1)))] for v in values)


def load(path):
    """Returns (records, truncated_tail) tolerating a torn final line."""
    records, truncated = [], False
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"telemetry_report: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                truncated = True  # torn tail from a killed writer: expected
            else:
                print(f"telemetry_report: skipping malformed line {i + 1}",
                      file=sys.stderr)
            continue
        if isinstance(rec, dict) and "kind" in rec:
            records.append(rec)
    return records, truncated


def fmt_secs(s):
    s = float(s)
    if s < 120:
        return f"{s:.1f}s"
    m, sec = divmod(int(s), 60)
    h, m = divmod(m, 60)
    return f"{h}h{m:02d}m{sec:02d}s" if h else f"{m}m{sec:02d}s"


def section(title):
    print(f"\n== {title} ==")


def report(records, truncated):
    by_kind = {}
    for r in records:
        by_kind.setdefault(r["kind"], []).append(r)

    section("configuration")
    starts = by_kind.get("run_start", [])
    if not starts:
        print("  (no run_start record)")
    for i, r in enumerate(starts):
        tag = f"segment {i + 1}: " if len(starts) > 1 else ""
        print(f"  {tag}seed={r.get('seed')} workers={r.get('workers')} "
              f"per_lib={r.get('per_lib')} reduction={r.get('reduction')} "
              f"libs={','.join(r.get('libs', []))}")
        if r.get("resumed"):
            print(f"    resumed from checkpoint at "
                  f"{r.get('base_executions', 0):,} executions")

    section("progress")
    hbs = by_kind.get("heartbeat", [])
    if not hbs:
        print("  (no heartbeat records)")
    else:
        rates = [float(h.get("execs_per_sec", 0.0)) for h in hbs]
        print(f"  heartbeats: {len(hbs)}  "
              f"span {fmt_secs(hbs[-1].get('elapsed', 0))}")
        print(f"  execs/sec: min {min(rates):,.0f}  "
              f"mean {sum(rates) / len(rates):,.0f}  max {max(rates):,.0f}")
        print(f"  [{sparkline(rates)}]")
        peak_q = max(int(h.get("queue", 0)) for h in hbs)
        peak_busy = max(int(h.get("busy", 0)) for h in hbs)
        donations = max(int(h.get("donations", 0)) for h in hbs)
        print(f"  peak queue {peak_q}  peak busy workers {peak_busy}  "
              f"donations {donations}")
        last = hbs[-1].get("sweep", {})
        if last:
            print(f"  last sweep counters: "
                  f"scenarios={last.get('scenarios', 0)} "
                  f"executions={last.get('executions', 0):,} "
                  f"completed={last.get('completed', 0):,} "
                  f"races={last.get('races', 0)} "
                  f"deadlocks={last.get('deadlocks', 0)} "
                  f"violations={last.get('violations', 0)} "
                  f"sleep_pruned={last.get('sleep_pruned', 0):,}")

    section("violations")
    viols = by_kind.get("violation", [])
    if not viols:
        print("  none")
    for r in viols:
        print(f"  [{fmt_secs(r.get('elapsed', 0))}] {r.get('lib')} "
              f"scenario {r.get('scenario')}: {r.get('verdict')}")
        trace = ",".join(str(d) for d in r.get("replay", []))
        print(f"    scenario: {r.get('scenario_str', '?')}")
        print(f"    replay:   {trace or '(empty trace)'}")

    section("checkpoints")
    ckpts = by_kind.get("checkpoint", [])
    if not ckpts:
        print("  none")
    for r in ckpts:
        print(f"  [{fmt_secs(r.get('elapsed', 0))}] {r.get('reason')} -> "
              f"{r.get('path')} at {r.get('executions', 0):,} executions")

    section("outcome")
    ends = by_kind.get("run_end", [])
    if ends:
        r = ends[-1]
        state = "INTERRUPTED (checkpoint written)" if r.get("interrupted") \
            else "completed"
        # Note: an interrupted run_end reports the totals of *completed*
        # libraries only; the checkpoint carries the in-flight remainder.
        print(f"  {state} after {fmt_secs(r.get('elapsed', 0))}: "
              f"fingerprint {r.get('fingerprint')}  "
              f"executions {r.get('executions', 0):,}  "
              f"violations {r.get('violations', 0)}")
    else:
        print("  stream ends without run_end: the writer was killed "
              "(resume from its last checkpoint)")
    if truncated:
        print("  note: final line was torn mid-write and skipped")

    return 1 if viols else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("telemetry", help="JSONL stream from --telemetry")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable summary instead of text")
    args = ap.parse_args()

    records, truncated = load(args.telemetry)
    if not records:
        print(f"telemetry_report: no records in {args.telemetry}",
              file=sys.stderr)
        return 2

    if args.json:
        by_kind = {}
        for r in records:
            by_kind.setdefault(r["kind"], []).append(r)
        ends = by_kind.get("run_end", [])
        summary = {
            "records": len(records),
            "kinds": {k: len(v) for k, v in sorted(by_kind.items())},
            "violations": [
                {"lib": r.get("lib"), "scenario": r.get("scenario"),
                 "verdict": r.get("verdict"), "replay": r.get("replay", [])}
                for r in by_kind.get("violation", [])
            ],
            "truncated_tail": truncated,
            "run_end": ends[-1] if ends else None,
        }
        print(json.dumps(summary, indent=2))
        return 1 if summary["violations"] else 0

    return report(records, truncated)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
