#!/usr/bin/env bash
# Profile the stepping-loop hot path (Machine/Scheduler/Engine) under the
# E13 interpreter microbenchmark (bench/bench_interpreter.cpp).
#
# Profiler selection is gated on availability:
#   * `perf` present and usable -> perf record/report (cycles, call graph);
#   * otherwise, gcc/g++ present -> a one-off -pg (gprof) build in
#     build-profile/ and a flat gprof profile;
#   * neither -> exit 3 with a clear message (nothing is guessed at).
#
# Usage:
#   scripts/profile_hotpath.sh [--bench bench_interpreter|bench_simulator]
#                              [--out DIR]
#
# Output lands in DIR (default profile-out/): perf.data + report.txt, or
# gmon.out + gprof.txt. The report's top entries are echoed to stdout.

set -euo pipefail

BENCH=bench_interpreter
OUT=profile-out
while [ $# -gt 0 ]; do
  case "$1" in
    --bench) BENCH="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    -h|--help) sed -n '2,17p' "$0"; exit 0 ;;
    *) echo "profile_hotpath: unknown argument: $1" >&2; exit 2 ;;
  esac
done

case "$BENCH" in
  bench_interpreter|bench_simulator) ;;
  *) echo "profile_hotpath: unsupported bench: $BENCH" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
mkdir -p "$OUT"

# perf needs both the binary and the kernel's cooperation; a container
# with perf installed but perf_event_paravirt disabled still fails, so
# probe with a no-op measurement instead of only `command -v`.
have_perf() {
  command -v perf >/dev/null 2>&1 &&
    perf stat -e task-clock true >/dev/null 2>&1
}

if have_perf; then
  echo "== profiler: perf (cycles, call graph) =="
  cmake -S . -B build-profile -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >/dev/null
  cmake --build build-profile -j --target "$BENCH" >/dev/null
  perf record -g -o "$OUT/perf.data" -- \
    "./build-profile/bench/$BENCH" --bench-out "$OUT" >/dev/null
  perf report -i "$OUT/perf.data" --stdio >"$OUT/report.txt"
  echo "report: $OUT/report.txt (top of the profile below)"
  grep -m 25 -v '^#' "$OUT/report.txt" | sed '/^$/d' | head -25
  exit 0
fi

if command -v g++ >/dev/null 2>&1; then
  echo "== profiler: gprof fallback (perf unavailable) =="
  cmake -S . -B build-profile -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg >/dev/null
  cmake --build build-profile -j --target "$BENCH" >/dev/null
  # gmon.out is dropped in the working directory of the profiled process.
  (cd "$OUT" && "../build-profile/bench/$BENCH" --bench-out . >/dev/null)
  gprof "build-profile/bench/$BENCH" "$OUT/gmon.out" >"$OUT/gprof.txt"
  echo "report: $OUT/gprof.txt (flat profile below)"
  awk '/^ *time/{found=1} found' "$OUT/gprof.txt" | head -25
  exit 0
fi

echo "profile_hotpath: neither perf nor g++/gprof is available" >&2
exit 3
