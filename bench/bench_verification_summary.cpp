//===-- bench/bench_verification_summary.cpp - Experiment E7 ---------------===//
//
// The analog of the paper's Section 1.2 mechanization report ("our library
// verifications are between 1.5KLOC and 3.0KLOC ... first mechanized RMC
// verifications of exchanger, elimination stack, and the Herlihy-Wing
// queue"): one row per library × spec style with the exploration effort
// (executions, events) standing in for proof effort, plus this
// repository's module line counts standing in for the Coq development's.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "lib/ElimStack.h"
#include "lib/Exchanger.h"
#include "spec/Composition.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"
#include "support/Json.h"

#include <filesystem>
#include <fstream>

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

struct VerifyRow {
  std::string Library;
  std::string Spec;
  uint64_t Executions = 0;
  uint64_t Events = 0;
  uint64_t Violations = 0;
  Explorer::Summary Sum; // full exploration summary (for the JSON dump)
};

/// Standard contended workload: one producing thread with two values, two
/// consuming threads with one operation each.
template <typename SetupT, typename CheckT>
VerifyRow verify(std::string Library, std::string Spec, SetupT Setup,
                 CheckT Check) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 120'000;

  VerifyRow Row;
  Row.Library = std::move(Library);
  Row.Spec = std::move(Spec);
  auto Sum = explore(
      Opts, Setup,
      [&](Machine &M, Scheduler &S, Scheduler::RunResult R) {
        (void)M;
        (void)S;
        if (R != Scheduler::RunResult::Done)
          return;
        uint64_t Events = 0;
        if (!Check(Events))
          ++Row.Violations;
        Row.Events += Events;
      });
  Row.Executions = Sum.Executions;
  Row.Sum = std::move(Sum);
  return Row;
}

/// Dumps the per-row results (including the full exploration summaries with
/// per-tag choice-point statistics) to BENCH_verification_summary.json so
/// the verification-effort trajectory is tracked across PRs.
void writeJson(const std::vector<VerifyRow> &Rows, const std::string &OutDir) {
  JsonWriter J;
  J.beginObject();
  J.field("experiment", "E7 verification summary");
  J.key("rows");
  J.beginArray();
  for (const VerifyRow &R : Rows) {
    J.beginObject();
    J.field("library", R.Library);
    J.field("spec", R.Spec);
    J.field("executions", R.Executions);
    J.field("events_checked", R.Events);
    J.field("violations", R.Violations);
    J.key("exploration");
    J.raw(R.Sum.json());
    J.endObject();
  }
  J.endArray();
  J.endObject();
  std::string Path = OutDir + "/BENCH_verification_summary.json";
  std::ofstream Out(Path);
  Out << J.str() << "\n";
  std::printf("\nwrote %s\n", Path.c_str());
}

uint64_t countLines(const std::filesystem::path &Dir) {
  uint64_t N = 0;
  std::error_code Ec;
  for (auto It = std::filesystem::recursive_directory_iterator(Dir, Ec);
       It != std::filesystem::recursive_directory_iterator();
       It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file())
      continue;
    auto Ext = It->path().extension();
    if (Ext != ".h" && Ext != ".cpp")
      continue;
    std::ifstream In(It->path());
    std::string Line;
    while (std::getline(In, Line))
      ++N;
  }
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutDir = benchOutDir(Argc, Argv);
  std::printf("E7: verification summary (the paper's Section 1.2 report, "
              "reproduced as\nexhaustive model-checking results)\n\n");

  Table T({"library", "spec style", "executions", "events checked",
           "violations"});
  std::vector<VerifyRow> Rows;

  // Queues.
  for (QueueImpl Impl : {QueueImpl::Ms, QueueImpl::Hw, QueueImpl::Locked}) {
    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::SimQueue> Q;
    std::vector<std::vector<Value>> Got;
    auto Setup = [&](Machine &M, Scheduler &S) {
      Mon = std::make_unique<spec::SpecMonitor>();
      Q = makeQueue(Impl, M, *Mon);
      Got.assign(2, {});
      sim::Env &E0 = S.newThread();
      S.start(E0, enqueuer(E0, *Q, {1, 2}));
      sim::Env &E1 = S.newThread();
      S.start(E1, dequeuer(E1, *Q, 1, &Got[0]));
      sim::Env &E2 = S.newThread();
      S.start(E2, dequeuer(E2, *Q, 1, &Got[1]));
    };
    Rows.push_back(verify(queueImplName(Impl), "LAT_hb (QueueConsistent)",
                          Setup, [&](uint64_t &Events) {
                            Events = Mon->graph().committedEvents().size();
                            return checkQueueConsistent(Mon->graph(),
                                                        Q->objId())
                                .ok();
                          }));
    if (Impl != QueueImpl::Hw)
      Rows.push_back(verify(queueImplName(Impl), "LAT_abs_hb (abs state)",
                            Setup, [&](uint64_t &Events) {
                              Events =
                                  Mon->graph().committedEvents().size();
                              return checkQueueAbsState(Mon->graph(),
                                                        Q->objId())
                                  .ok();
                            }));
  }

  // Stacks.
  for (StackImpl Impl : {StackImpl::Treiber, StackImpl::Locked}) {
    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::SimStack> St;
    std::vector<std::vector<Value>> Got;
    auto Setup = [&](Machine &M, Scheduler &S) {
      Mon = std::make_unique<spec::SpecMonitor>();
      St = makeStack(Impl, M, *Mon);
      Got.assign(2, {});
      sim::Env &E0 = S.newThread();
      S.start(E0, pusher(E0, *St, {1, 2}));
      sim::Env &E1 = S.newThread();
      S.start(E1, popper(E1, *St, 1, &Got[0]));
      sim::Env &E2 = S.newThread();
      S.start(E2, popper(E2, *St, 1, &Got[1]));
    };
    Rows.push_back(verify(stackImplName(Impl), "LAT_hb (StackConsistent)",
                          Setup, [&](uint64_t &Events) {
                            Events = Mon->graph().committedEvents().size();
                            return checkStackConsistent(Mon->graph(),
                                                        St->objId())
                                .ok();
                          }));
    Rows.push_back(verify(stackImplName(Impl), "LAT_hist_hb (linearizable)",
                          Setup, [&](uint64_t &Events) {
                            Events = Mon->graph().committedEvents().size();
                            return findLinearization(Mon->graph(),
                                                     St->objId(),
                                                     SeqSpec::Stack)
                                .Found;
                          }));
  }

  // Exchanger.
  {
    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::Exchanger> X;
    std::vector<Value> Got;
    struct ExchangeBody {
      static sim::Task<void> run(sim::Env &E, lib::Exchanger &X, Value V,
                                 Value *Out) {
        auto T = X.exchange(E, V, 2);
        *Out = co_await T;
      }
    };
    auto Setup = [&](Machine &M, Scheduler &S) {
      Mon = std::make_unique<spec::SpecMonitor>();
      X = std::make_unique<lib::Exchanger>(M, *Mon, "x");
      Got.assign(2, 0);
      for (unsigned I = 0; I != 2; ++I) {
        sim::Env &E = S.newThread();
        S.start(E, ExchangeBody::run(E, *X, 10 + I, &Got[I]));
      }
    };
    Rows.push_back(verify("exchanger", "ExchangerConsistent (Fig. 5)",
                          Setup, [&](uint64_t &Events) {
                            Events = Mon->graph().committedEvents().size();
                            return checkExchangerConsistent(Mon->graph(),
                                                            X->objId())
                                .ok();
                          }));
  }

  // Elimination stack (compositional).
  {
    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::ElimStack> St;
    struct EsBody {
      static sim::Task<void> push2(sim::Env &E, lib::ElimStack &S) {
        auto T1 = S.push(E, 1, 3);
        co_await T1;
        auto T2 = S.push(E, 2, 3);
        co_await T2;
      }
      static sim::Task<void> pop1(sim::Env &E, lib::ElimStack &S) {
        auto T = S.pop(E, 3);
        co_await T;
      }
    };
    auto Setup = [&](Machine &M, Scheduler &S) {
      Mon = std::make_unique<spec::SpecMonitor>();
      St = std::make_unique<lib::ElimStack>(M, *Mon, "es");
      sim::Env &E0 = S.newThread();
      S.start(E0, EsBody::push2(E0, *St));
      sim::Env &E1 = S.newThread();
      S.start(E1, EsBody::pop1(E1, *St));
      sim::Env &E2 = S.newThread();
      S.start(E2, EsBody::pop1(E2, *St));
    };
    Rows.push_back(
        verify("elimination stack", "StackConsistent (composed, §4.1)",
               Setup, [&](uint64_t &Events) {
                 graph::EventGraph Es = buildElimStackGraph(
                     Mon->graph(), St->baseObjId(), St->exchangerObjId(),
                     100);
                 Events = Es.objectEvents(100).size();
                 return checkStackConsistent(Es, 100).ok();
               }));
  }

  bool AllOk = true;
  for (const VerifyRow &R : Rows) {
    AllOk &= R.Violations == 0;
    T.addRow({R.Library, R.Spec, fmtU64(R.Executions), fmtU64(R.Events),
              fmtViolations(R.Violations)});
  }
  T.print();

  // Module inventory: the analog of the paper's KLOC report.
#ifdef COMPASS_SOURCE_DIR
  std::printf("\nModule inventory (lines of C++, the analog of the "
              "paper's Coq KLOC table):\n");
  Table L({"module", "role", "lines"});
  const std::pair<const char *, const char *> Modules[] = {
      {"src/rmc", "ORC11 view-based memory model"},
      {"src/sim", "coroutine scheduler + model checker"},
      {"src/graph", "event graphs (logical views)"},
      {"src/spec", "LAT_hb/abs/hist specs + composition"},
      {"src/lib", "verified simulated libraries"},
      {"src/clients", "verified clients (MP, SPSC, resx)"},
      {"src/native", "std::atomic production library"},
      {"tests", "test suite"},
      {"bench", "experiment harnesses"},
  };
  std::filesystem::path Root(COMPASS_SOURCE_DIR);
  for (auto [Dir, Role] : Modules)
    L.addRow({Dir, Role, fmtU64(countLines(Root / Dir))});
  L.print();
#endif

  writeJson(Rows, OutDir);

  std::printf("\n%s\n", AllOk ? "ALL VERIFICATIONS PASS."
                              : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
