//===-- bench/bench_conformance.cpp - Experiment E9 (DESIGN.md §7) ---------===//
//
// Regenerates the conformance-harness campaign (DESIGN.md §7) as a table
// artifact: a pristine-library sweep (N generated scenarios per library,
// every completed execution's event graph validated by the reference
// model) followed by the mutation campaign (each seeded library mutation
// must be killed by some generated scenario, and its counterexample
// shrunk). The sweep rows quantify *checking effort* — executions,
// linearization-budget overruns, truncated trees — per library; the
// mutation rows quantify *oracle sensitivity* — scenarios needed until a
// kill and the size of the minimized counterexample.
//
// Expected shape: every sweep row clean (0 races / deadlocks / violations)
// with a worker-count-independent fingerprint, and every mutation killed.
// The binary exits non-zero otherwise, so it doubles as a slow-tier gate.
//
// Flags: --seed N --per-lib N --workers N --max-execs N --json
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "check/Conformance.h"
#include "support/Json.h"

#include <cstdlib>
#include <cstring>

using namespace compass;
using namespace compass::bench;
using namespace compass::check;

int main(int Argc, char **Argv) {
  SweepOptions SO;
  SO.Seed = 1;
  SO.ScenariosPerLib = 25;
  SO.Workers = 2;
  SO.MaxExecutionsPerScenario = 150'000;
  MutationOptions MO;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    auto Num = [&](const char *Flag) -> uint64_t {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", Flag);
        std::exit(2);
      }
      return std::strtoull(Argv[++I], nullptr, 10);
    };
    if (!std::strcmp(Argv[I], "--seed"))
      SO.Seed = MO.Seed = Num("--seed");
    else if (!std::strcmp(Argv[I], "--per-lib"))
      SO.ScenariosPerLib = static_cast<unsigned>(Num("--per-lib"));
    else if (!std::strcmp(Argv[I], "--workers"))
      SO.Workers = static_cast<unsigned>(Num("--workers"));
    else if (!std::strcmp(Argv[I], "--max-execs"))
      SO.MaxExecutionsPerScenario = MO.MaxExecutionsPerScenario =
          Num("--max-execs");
    else if (!std::strcmp(Argv[I], "--json"))
      Json = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--per-lib N] [--workers N] "
                   "[--max-execs N] [--json]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== E9a: pristine-library conformance sweep (seed=%llu, "
              "%u scenarios/lib, %u workers) ==\n",
              static_cast<unsigned long long>(SO.Seed), SO.ScenariosPerLib,
              SO.Workers);
  SweepReport Sweep = runSweep(SO);
  {
    Table T({"library", "scenarios", "executions", "races", "deadlocks",
             "violations", "lin-aborts", "truncated", "max-depth"});
    for (const LibSweepStats &St : Sweep.PerLib)
      T.addRow({libName(St.L), fmtU64(St.Scenarios), fmtU64(St.Executions),
                fmtU64(St.Races), fmtU64(St.Deadlocks), fmtU64(St.Violations),
                fmtU64(St.LinAborts), fmtU64(St.Truncated),
                fmtU64(St.MaxDepth)});
    T.print();
    std::printf("fingerprint: 0x%llx  (%s)\n\n",
                static_cast<unsigned long long>(Sweep.fingerprint()),
                Sweep.clean() ? "clean" : "VIOLATIONS");
  }

  std::printf("== E9b: mutation campaign (seed=%llu) ==\n",
              static_cast<unsigned long long>(MO.Seed));
  std::vector<MutantReport> Muts = runMutationTests(MO);
  bool AllKilled = true;
  {
    Table T({"mutation", "killed", "scenarios", "rule", "ops", "decisions",
             "minimized"});
    for (const MutantReport &R : Muts) {
      AllKilled &= R.Killed;
      std::string Ops = "-", Decs = "-", Min = "-";
      if (R.Killed && R.Shrunk.OpsBefore) {
        Ops = fmtU64(R.Shrunk.OpsBefore) + "->" + fmtU64(R.Shrunk.OpsAfter);
        Decs = fmtU64(R.Shrunk.DecisionsBefore) + "->" +
               fmtU64(R.Shrunk.DecisionsAfter);
        Min = R.Shrunk.Min.str();
      }
      T.addRow({mutationName(R.Mut), R.Killed ? "yes" : "NO",
                fmtU64(R.ScenariosTried), R.Rule.empty() ? "-" : R.Rule, Ops,
                Decs, Min});
    }
    T.print();
  }

  if (Json) {
    JsonWriter J;
    J.beginObject();
    J.key("sweep");
    J.raw(Sweep.json());
    J.key("mutants");
    J.beginArray();
    for (const MutantReport &R : Muts) {
      J.beginObject();
      J.field("mutation", mutationName(R.Mut));
      J.field("killed", R.Killed);
      J.field("scenarios_tried", R.ScenariosTried);
      J.field("rule", R.Rule);
      if (R.Killed && R.Shrunk.OpsBefore) {
        J.field("ops_before", R.Shrunk.OpsBefore);
        J.field("ops_after", R.Shrunk.OpsAfter);
        J.field("decisions_before", R.Shrunk.DecisionsBefore);
        J.field("decisions_after", R.Shrunk.DecisionsAfter);
        J.field("minimized", R.Shrunk.Min.str());
      }
      J.endObject();
    }
    J.endArray();
    J.endObject();
    std::printf("%s\n", J.str().c_str());
  }

  bool Ok = Sweep.clean() && AllKilled;
  std::printf("\nE9 verdict: %s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
