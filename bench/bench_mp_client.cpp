//===-- bench/bench_mp_client.cpp - Experiment E1 (Figures 1 and 3) --------===//
//
// Regenerates the paper's central client result: in the Message-Passing
// client of Figure 1, the right-most thread's dequeue can never return
// empty — because it synchronized with both enqueues *externally* through
// the release/acquire flag (the Figure 3 proof). The ablation rows drop
// that synchronization (relaxed flag) and show the guarantee collapse,
// demonstrating that the LAT_hb specs' support for combining library-
// internal and client-external happens-before is load-bearing.
//
// Expected shape: verified rows report 0 empty dequeues on the right and
// no consistency violations; ablation rows report > 0 empty dequeues for
// the lock-free queues (the locked queue is internally strong enough to
// survive even a relaxed flag).
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "clients/MpClient.h"
#include "spec/Consistency.h"

#include <cinttypes>

using namespace compass;
using namespace compass::bench;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

struct MpRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t RightEmpty = 0;
  uint64_t GraphViolations = 0;
};

MpRow runMp(QueueImpl Impl, MemOrder FlagStore, MemOrder FlagRead) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 250'000;

  MpRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::SimQueue> Q;
  MpOutcome Out;
  MpConfig Cfg;
  Cfg.FlagStore = FlagStore;
  Cfg.FlagRead = FlagRead;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = makeQueue(Impl, M, *Mon);
        Out = MpOutcome();
        setupMpClient(M, S, *Q, Cfg, Out);
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        if (Out.Right == graph::EmptyVal)
          ++Row.RightEmpty;
        if (!spec::checkQueueConsistent(Mon->graph(), Q->objId()).ok())
          ++Row.GraphViolations;
      });
  Row.Executions = Sum.Executions;
  return Row;
}

} // namespace

int main() {
  std::printf("E1: Message-Passing client (paper Figures 1 and 3)\n");
  std::printf("3 threads: enq(41);enq(42);flag:=1  |  deq  |  await flag;"
              "deq\n");
  std::printf("exhaustive exploration, preemption bound 2\n\n");

  Table T({"queue", "flag sync", "executions", "checked", "right deq empty",
           "consistency violations", "verdict"});

  struct Config {
    MemOrder Store, Read;
    const char *Name;
    bool ExpectEmptyPossible; // For the lock-free queues.
  };
  const Config Configs[] = {
      {MemOrder::Release, MemOrder::Acquire, "release/acquire", false},
      {MemOrder::Relaxed, MemOrder::Relaxed, "relaxed (ablation)", true},
  };

  bool AllAsExpected = true;
  for (QueueImpl Impl : {QueueImpl::Ms, QueueImpl::Hw, QueueImpl::Locked}) {
    for (const Config &C : Configs) {
      MpRow Row = runMp(Impl, C.Store, C.Read);
      bool EmptySeen = Row.RightEmpty > 0;
      bool Expected = C.ExpectEmptyPossible && Impl != QueueImpl::Locked;
      bool Ok = EmptySeen == Expected && Row.GraphViolations == 0;
      AllAsExpected &= Ok;
      T.addRow({queueImplName(Impl), C.Name, fmtU64(Row.Executions),
                fmtU64(Row.Checked), fmtU64(Row.RightEmpty),
                fmtViolations(Row.GraphViolations),
                Ok ? "as proven" : "UNEXPECTED"});
    }
  }
  T.print();
  std::printf("\nPaper claim reproduced: with the release/acquire flag the "
              "right thread's dequeue\nis never empty on any "
              "implementation; dropping the flag's synchronization breaks "
              "the\nguarantee for the relaxed queues. %s\n",
              AllAsExpected ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllAsExpected ? 0 : 1;
}
