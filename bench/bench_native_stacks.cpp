//===-- bench/bench_native_stacks.cpp - Experiment P2 ----------------------===//
//
// The elimination-stack motivation (Section 4): under push/pop storms,
// elimination converts head-CAS contention into pairwise exchanges.
// Measures a push+pop pair per iteration for the Treiber stack, the
// elimination stack and a mutex baseline under 1-4 threads.
//
// Expected shape: Treiber and elimination are close at low contention;
// under contention the elimination stack's failed-CAS traffic is diverted
// to the exchanger (on a single-core host the effect shows mostly as
// comparable-or-better latency rather than scaling).
//
//===----------------------------------------------------------------------===//

#include "native/ElimStack.h"
#include "native/Locked.h"
#include "native/TreiberStack.h"
#include "native/TreiberStackEbr.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace compass::native;

namespace {

constexpr uint64_t PairsPerThread = 8'000;

std::unique_ptr<TreiberStack<uint64_t>> GTreiber;
std::unique_ptr<ElimStack<uint64_t>> GElim;
std::unique_ptr<MutexStack<uint64_t>> GMutex;

void treiberSetup(const benchmark::State &) {
  GTreiber = std::make_unique<TreiberStack<uint64_t>>();
}
void treiberTeardown(const benchmark::State &) { GTreiber.reset(); }

void elimSetup(const benchmark::State &) {
  GElim = std::make_unique<ElimStack<uint64_t>>();
}
void elimTeardown(const benchmark::State &) { GElim.reset(); }

void mutexSetup(const benchmark::State &) {
  GMutex = std::make_unique<MutexStack<uint64_t>>();
}
void mutexTeardown(const benchmark::State &) { GMutex.reset(); }

std::unique_ptr<TreiberStackEbr<uint64_t>> GEbr;

void ebrSetup(const benchmark::State &) {
  GEbr = std::make_unique<TreiberStackEbr<uint64_t>>();
}
void ebrTeardown(const benchmark::State &) { GEbr.reset(); }

void bmTreiber(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GTreiber->push(V++);
    benchmark::DoNotOptimize(GTreiber->pop());
  }
  State.SetItemsProcessed(State.iterations());
}

void bmElim(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GElim->push(V++);
    benchmark::DoNotOptimize(GElim->pop());
  }
  State.SetItemsProcessed(State.iterations());
}

void bmEbr(benchmark::State &State) {
  // Per-thread participant: pin/unpin bracketing plus online reclamation
  // is the overhead this row prices against the deferred-retire Treiber.
  auto H = GEbr->registerThread();
  uint64_t V = 1;
  for (auto _ : State) {
    GEbr->push(H, V++);
    benchmark::DoNotOptimize(GEbr->pop(H));
  }
  State.SetItemsProcessed(State.iterations());
}

void bmMutex(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GMutex->push(V++);
    benchmark::DoNotOptimize(GMutex->pop());
  }
  State.SetItemsProcessed(State.iterations());
}

} // namespace

int main(int argc, char **argv) {
  for (int Threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark("P2/treiber_stack/push_pop_pair",
                                 bmTreiber)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(treiberSetup)
        ->Teardown(treiberTeardown)
        ->UseRealTime();
    benchmark::RegisterBenchmark("P2/elimination_stack/push_pop_pair",
                                 bmElim)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(elimSetup)
        ->Teardown(elimTeardown)
        ->UseRealTime();
    benchmark::RegisterBenchmark("P2/treiber_stack_ebr/push_pop_pair",
                                 bmEbr)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(ebrSetup)
        ->Teardown(ebrTeardown)
        ->UseRealTime();
    benchmark::RegisterBenchmark("P2/mutex_stack/push_pop_pair", bmMutex)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(mutexSetup)
        ->Teardown(mutexTeardown)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
