//===-- bench/bench_interpreter.cpp - Experiment E13 (stepping loop) ------===//
//
// Microbenchmarks of the Machine/Scheduler stepping loop itself, A/B-ing
// the copy-on-write execution engine (sim/Engine.h) against classic
// root replay on the fixed E2 MS-queue and E7 locked-queue workloads:
//
//  * ns/execution and ns/step for both engine paths, plus the fraction of
//    logical steps the snapshot/fast-forward path avoided re-executing;
//  * a deterministic-core equality check between the two paths (the same
//    invariant tests/ReductionTest.cpp pins) — a bench run that prints
//    core mismatch also exits nonzero, so CI smoke catches divergence;
//  * a google-benchmark row replaying one fixed decision sequence, the
//    raw single-execution interpreter cost with no exploration around it.
//
// Results are dumped to BENCH_interpreter.json for cross-PR tracking by
// scripts/bench_compare.py.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "lib/MsQueue.h"
#include "sim/Workload.h"
#include "spec/Consistency.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

/// The fixed workload family: enq{1,2} against two single-element
/// dequeuers at preemption bound 2, over either queue implementation —
/// E2's MS queue (lock-free, CAS-heavy) or E7's locked queue (spin-lock
/// dominated, the sleep-set reduction's best case).
Workload queueWorkload(bench::QueueImpl Impl, EnginePath Engine,
                       ReductionMode Red) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.Reduction = Red;
  Opts.Engine = Engine;
  return Workload(Opts, [Impl]() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::SimQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{[St, Impl](Machine &M, Scheduler &S) {
                       if (!St->Mon)
                         St->Mon = std::make_unique<spec::SpecMonitor>();
                       St->Mon->beginExecution(M);
                       St->Q = bench::makeQueue(Impl, M, *St->Mon);
                       St->Got0.clear();
                       St->Got1.clear();
                       Env &E0 = S.newThread();
                       S.start(E0, bench::enqueuer(E0, *St->Q, {1, 2}));
                       Env &E1 = S.newThread();
                       S.start(E1, bench::dequeuer(E1, *St->Q, 1, &St->Got0));
                       Env &E2 = S.newThread();
                       S.start(E2, bench::dequeuer(E2, *St->Q, 1, &St->Got1));
                     },
                     [St](Machine &, Scheduler &, Scheduler::RunResult R) {
                       if (R != Scheduler::RunResult::Done)
                         return true;
                       return spec::checkQueueConsistent(St->Mon->graph(),
                                                         St->Q->objId())
                           .ok();
                     }};
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    // The dequeuers' only client effects are the Got vectors (restored
    // above), so finished threads can be skipped during fast-forward.
    B.CowSkipFinished = true;
    return B;
  });
}

const char *implName(bench::QueueImpl I) {
  return I == bench::QueueImpl::Ms ? "MS queue (E2, pb=2)"
                                   : "locked queue (E7, pb=2)";
}

const char *engineName(EnginePath E) {
  return E == EnginePath::RootReplay ? "root-replay" : "cow";
}

const char *redName(ReductionMode R) {
  return R == ReductionMode::SleepSet ? "sleep-set" : "none";
}

struct Row {
  std::string Workload;
  EnginePath Engine;
  ReductionMode Red;
  Explorer::Summary Sum;
  double NsPerExec = 0;
  double NsPerStep = 0;   ///< Per *executed* step.
  double StepsAvoided = 0; ///< Fraction of logical steps not re-executed.
  double SpeedupVsRoot = 0;
  bool CoreMatch = true; ///< Deterministic core equals the root-replay run.
};

std::string fmtF(double V, const char *Fmt = "%.0f") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  return Buf;
}

/// Runs one workload/reduction cell under both engine paths and appends
/// the two rows (root-replay first). Returns false on core mismatch.
bool runCell(std::vector<Row> &Rows, bench::QueueImpl Impl,
             ReductionMode Red) {
  Explorer::Summary Root;
  bool Ok = true;
  for (EnginePath E : {EnginePath::RootReplay, EnginePath::Auto}) {
    Explorer::Summary Sum = exploreSerial(queueWorkload(Impl, E, Red));
    Row R{implName(Impl), E, Red, Sum};
    if (Sum.Executions) {
      R.NsPerExec = Sum.Perf.WallSeconds * 1e9 /
                    static_cast<double>(Sum.Executions);
      if (Sum.Perf.StepsExecuted)
        R.NsPerStep = Sum.Perf.WallSeconds * 1e9 /
                      static_cast<double>(Sum.Perf.StepsExecuted);
      if (Sum.Perf.StepsLogical)
        R.StepsAvoided =
            1.0 - static_cast<double>(Sum.Perf.StepsExecuted) /
                      static_cast<double>(Sum.Perf.StepsLogical);
    }
    if (E == EnginePath::RootReplay) {
      Root = Sum;
      R.SpeedupVsRoot = 1.0;
    } else {
      R.SpeedupVsRoot = Root.Perf.WallSeconds > 0 && Sum.Perf.WallSeconds > 0
                            ? Root.Perf.WallSeconds / Sum.Perf.WallSeconds
                            : 0.0;
      R.CoreMatch = Sum.coreEquals(Root);
      Ok = Ok && R.CoreMatch;
    }
    Rows.push_back(std::move(R));
  }
  return Ok;
}

void printTable(const std::vector<Row> &Rows) {
  std::printf("\nE13: stepping-loop engine A/B (serial; hardware threads "
              "available: %u)\n\n",
              std::thread::hardware_concurrency());
  bench::Table T({"workload", "engine", "reduction", "executions",
                  "execs/sec", "ns/exec", "ns/step", "steps avoided",
                  "resumes", "speedup", "core"});
  for (const Row &R : Rows)
    T.addRow({R.Workload, engineName(R.Engine), redName(R.Red),
              bench::fmtU64(R.Sum.Executions),
              fmtF(R.Sum.Perf.ExecsPerSec), fmtF(R.NsPerExec),
              fmtF(R.NsPerStep), fmtF(R.StepsAvoided * 100, "%.0f%%"),
              bench::fmtU64(R.Sum.Perf.CowResumes),
              fmtF(R.SpeedupVsRoot, "%.2fx"),
              R.CoreMatch ? "match" : "MISMATCH"});
  T.print();
}

void writeJson(const std::vector<Row> &Rows, const std::string &OutDir) {
  JsonWriter J;
  J.beginObject();
  J.field("experiment", "E13 stepping-loop engine microbenchmark");
  J.field("hardware_threads",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  J.key("rows");
  J.beginArray();
  for (const Row &R : Rows) {
    J.beginObject();
    J.field("workload", R.Workload);
    J.field("engine", engineName(R.Engine));
    J.field("reduction", redName(R.Red));
    J.field("executions", R.Sum.Executions);
    J.field("wall_seconds", R.Sum.Perf.WallSeconds);
    J.field("execs_per_sec", R.Sum.Perf.ExecsPerSec);
    J.field("ns_per_exec", R.NsPerExec);
    J.field("ns_per_step", R.NsPerStep);
    J.field("steps_executed", R.Sum.Perf.StepsExecuted);
    J.field("steps_logical", R.Sum.Perf.StepsLogical);
    J.field("steps_avoided_frac", R.StepsAvoided);
    J.field("cow_resumes", R.Sum.Perf.CowResumes);
    J.field("root_runs", R.Sum.Perf.RootRuns);
    J.field("speedup_vs_root_replay", R.SpeedupVsRoot);
    J.field("core_match", R.CoreMatch);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  std::string Path = OutDir + "/BENCH_interpreter.json";
  std::ofstream Out(Path);
  Out << J.str() << "\n";
  std::printf("\nwrote %s\n", Path.c_str());
}

//===----------------------------------------------------------------------===//
// Raw single-execution replay cost (no exploration)
//===----------------------------------------------------------------------===//

void bmReplayExecution(benchmark::State &State) {
  // Replays the all-zeros decision sequence of the MS-queue workload:
  // one fixed execution through the full interpreter (coroutines, view
  // machine, event recording), measured end to end.
  Workload W = queueWorkload(bench::QueueImpl::Ms, EnginePath::RootReplay,
                             ReductionMode::None);
  uint64_t Steps = 0;
  for (auto _ : State) {
    ReplayResult R = replay(W, {});
    benchmark::DoNotOptimize(R.CheckOk);
    Steps += R.Steps;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
  State.SetLabel("scheduler steps (fixed MS-queue execution)");
}

} // namespace

BENCHMARK(bmReplayExecution)->Iterations(2'000);

int main(int argc, char **argv) {
  std::string OutDir = bench::benchOutDir(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<Row> Rows;
  bool Ok = true;
  for (bench::QueueImpl Impl :
       {bench::QueueImpl::Ms, bench::QueueImpl::Locked})
    for (ReductionMode Red : {ReductionMode::None, ReductionMode::SleepSet})
      Ok = runCell(Rows, Impl, Red) && Ok;
  printTable(Rows);
  writeJson(Rows, OutDir);
  if (!Ok) {
    std::fprintf(stderr, "FAIL: copy-on-write engine diverged from "
                         "root replay (deterministic core mismatch)\n");
    return 1;
  }
  return 0;
}
