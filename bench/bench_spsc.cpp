//===-- bench/bench_spsc.cpp - Experiment E3 (Section 3.2's SPSC client) ---===//
//
// Regenerates the single-producer single-consumer client result of
// Section 3.2: the producer enqueues a_p[0..n) in order, the consumer
// dequeues n elements (blocking); in *every* explored execution the
// consumer's array equals the producer's — the FIFO property the paper
// derives from the LAT_hb queue specs by building an SPSC protocol.
//
// Expected shape: zero order violations at every n; exploration exhausts
// (within the preemption bound).
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "clients/Spsc.h"
#include "lib/SpscRing.h"
#include "spec/Consistency.h"

using namespace compass;
using namespace compass::bench;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

int main() {
  std::printf("E3: SPSC client (paper Section 3.2)\n");
  std::printf("producer enqueues [1..n] in order; consumer blocking-"
              "dequeues n values\n\n");

  Table T({"n", "preemption bound", "executions", "checked",
           "order violations", "verdict"});

  bool AllOk = true;
  for (unsigned N : {2u, 3u, 4u}) {
    Explorer::Options Opts;
    Opts.PreemptionBound = 3;
    Opts.MaxExecutions = 250'000;

    std::vector<Value> Items;
    for (unsigned I = 1; I <= N; ++I)
      Items.push_back(I);

    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::MsQueue> Q;
    SpscOutcome Out;
    uint64_t Checked = 0, Violations = 0;

    auto Sum = explore(
        Opts,
        [&](Machine &M, Scheduler &S) {
          Mon = std::make_unique<spec::SpecMonitor>();
          Q = std::make_unique<lib::MsQueue>(M, *Mon, "q");
          Out = SpscOutcome();
          setupSpsc(M, S, *Q, Items, Out);
        },
        [&](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return;
          ++Checked;
          if (Out.Consumed != Items)
            ++Violations;
        });

    AllOk &= Violations == 0 && Checked > 0;
    T.addRow({fmtU64(N), "3", fmtU64(Sum.Executions), fmtU64(Checked),
              fmtViolations(Violations),
              Violations == 0 ? "FIFO end-to-end" : "BROKEN"});
  }
  T.print();

  // The specialized SPSC structure: a Lamport ring (no RMWs at all) —
  // QueueConsistent, FIFO end-to-end, and race-freedom of the na slot
  // handoff across wrap-around reuse, over all executions.
  std::printf("\nSPSC ring buffer (CAS-free; slots are non-atomic cells "
              "handed off via\nrelease/acquire indices):\n");
  Table T2({"capacity", "items", "executions", "order violations",
            "consistency", "races"});
  for (unsigned Cap : {1u, 2u}) {
    Explorer::Options Opts;
    Opts.PreemptionBound = 3;
    Opts.MaxExecutions = 300'000;
    std::vector<Value> Items = {11, 22, 33};

    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::SpscRing> Q;
    std::vector<Value> Got;
    uint64_t OrderBad = 0, GraphBad = 0;

    struct Body {
      static sim::Task<void> produce(sim::Env &E, lib::SpscRing &Q,
                                     std::vector<Value> Vs) {
        for (Value V : Vs) {
          auto T = Q.enqueueBlocking(E, V);
          co_await T;
        }
      }
      static sim::Task<void> consume(sim::Env &E, lib::SpscRing &Q,
                                     size_t N, std::vector<Value> *Out) {
        for (size_t I = 0; I != N; ++I) {
          auto T = Q.dequeueBlocking(E);
          Out->push_back(co_await T);
        }
      }
    };
    auto Sum = explore(
        Opts,
        [&](Machine &M, Scheduler &S) {
          Mon = std::make_unique<spec::SpecMonitor>();
          Q = std::make_unique<lib::SpscRing>(M, *Mon, "r", Cap);
          Got.clear();
          sim::Env &E0 = S.newThread();
          S.start(E0, Body::produce(E0, *Q, Items));
          sim::Env &E1 = S.newThread();
          S.start(E1, Body::consume(E1, *Q, Items.size(), &Got));
        },
        [&](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return;
          if (Got != Items)
            ++OrderBad;
          if (!spec::checkQueueConsistent(Mon->graph(), Q->objId()).ok())
            ++GraphBad;
        });
    AllOk &= OrderBad == 0 && GraphBad == 0 && Sum.Races == 0;
    T2.addRow({fmtU64(Cap), fmtU64(Items.size()), fmtU64(Sum.Executions),
               fmtViolations(OrderBad), GraphBad ? "VIOLATED" : "holds",
               fmtU64(Sum.Races)});
  }
  T2.print();

  std::printf("\nPaper claim reproduced: a_c == a_p in every execution. "
              "%s\n",
              AllOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
