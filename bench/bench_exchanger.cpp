//===-- bench/bench_exchanger.cpp - Experiment E5 (Figure 5, Section 4.2) --===//
//
// Regenerates the exchanger specification results: in every explored
// execution, ExchangerConsistent holds — matched pairs carry crossed
// values, have symmetric so edges, and are committed *atomically* (two
// adjacent commit indices produced by the helper, Section 4.2's helping
// pattern), while failed exchanges return ⊥ unmatched. Also runs the
// resource-transfer client: non-atomic payload handover through the
// exchanger is race-free, which exercises both synchronization
// directions of the spec.
//
// Expected shape: zero violations, zero data races; matches and
// all-failed outcomes both reachable.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "clients/ResourceExchange.h"
#include "lib/Exchanger.h"
#include "spec/Consistency.h"

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

sim::Task<void> exchangeOnce(sim::Env &E, lib::Exchanger &X, Value V,
                             unsigned Attempts, Value *Out) {
  auto T = X.exchange(E, V, Attempts);
  *Out = co_await T;
}

struct XRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t Violations = 0;
  uint64_t WithMatch = 0;
  uint64_t Races = 0;
};

XRow runExchanger(unsigned Threads, unsigned Attempts,
                  unsigned Preemptions) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 250'000;

  XRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::Exchanger> X;
  std::vector<Value> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        X = std::make_unique<lib::Exchanger>(M, *Mon, "x");
        Got.assign(Threads, 0);
        for (unsigned I = 0; I != Threads; ++I) {
          sim::Env &E = S.newThread();
          S.start(E, exchangeOnce(E, *X, 10 + I, Attempts, &Got[I]));
        }
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        if (!checkExchangerConsistent(Mon->graph(), X->objId()).ok())
          ++Row.Violations;
        for (Value V : Got)
          if (V != graph::BottomVal) {
            ++Row.WithMatch;
            break;
          }
      });
  Row.Executions = Sum.Executions;
  Row.Races = Sum.Races;
  return Row;
}

} // namespace

int main() {
  std::printf("E5: exchanger spec (paper Figure 5, Section 4.2)\n\n");

  Table T({"threads", "attempts", "executions", "checked",
           "consistency violations", "execs with a match", "races"});

  bool AllOk = true;
  struct Cfg {
    unsigned Threads, Attempts, Preemptions;
  };
  for (Cfg C : {Cfg{1, 2, ~0u}, Cfg{2, 2, ~0u}, Cfg{3, 1, 2}}) {
    XRow Row = runExchanger(C.Threads, C.Attempts, C.Preemptions);
    AllOk &= Row.Violations == 0 && Row.Races == 0 && Row.Checked > 0;
    if (C.Threads >= 2)
      AllOk &= Row.WithMatch > 0;
    T.addRow({fmtU64(C.Threads), fmtU64(C.Attempts),
              fmtU64(Row.Executions), fmtU64(Row.Checked),
              fmtViolations(Row.Violations), fmtU64(Row.WithMatch),
              fmtU64(Row.Races)});
  }
  T.print();

  // Resource-transfer client (the derived resource-exchange spec).
  std::printf("\nresource-transfer client: two threads exchange payload "
              "locations and read each\nother's non-atomic payload — "
              "race-free iff the exchanger synchronizes both ways.\n");
  {
    Explorer::Options Opts;
    Opts.PreemptionBound = 3;
    Opts.MaxExecutions = 250'000;
    std::unique_ptr<spec::SpecMonitor> Mon;
    std::unique_ptr<lib::Exchanger> X;
    clients::ResourceExchangeOutcome Out;
    uint64_t Checked = 0, Handovers = 0, Wrong = 0;
    auto Sum = explore(
        Opts,
        [&](Machine &M, Scheduler &S) {
          Mon = std::make_unique<spec::SpecMonitor>();
          X = std::make_unique<lib::Exchanger>(M, *Mon, "x");
          Out = clients::ResourceExchangeOutcome();
          clients::setupResourceExchange(M, S, *X, 2, Out);
        },
        [&](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return;
          ++Checked;
          if (Out.Succeeded[0]) {
            ++Handovers;
            if (Out.Received[0] != 101 || Out.Received[1] != 100)
              ++Wrong;
          }
        });
    std::printf("  executions=%llu checked=%llu handovers=%llu "
                "wrong-payloads=%llu races=%llu\n",
                (unsigned long long)Sum.Executions,
                (unsigned long long)Checked, (unsigned long long)Handovers,
                (unsigned long long)Wrong, (unsigned long long)Sum.Races);
    AllOk &= Sum.Races == 0 && Wrong == 0 && Handovers > 0;
  }

  std::printf("\nPaper claim reproduced: first RMC exchanger spec — "
              "matched pairs commit atomically\nwith crossed values and "
              "bidirectional synchronization. %s\n",
              AllOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
