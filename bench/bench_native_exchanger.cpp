//===-- bench/bench_native_exchanger.cpp - Experiment P3 -------------------===//
//
// Exchanger behaviour on real atomics (Section 4.2's library): exchange
// latency and match rate vs. thread count. With one thread every call
// times out (pure overhead baseline); with partners present the match
// rate climbs.
//
//===----------------------------------------------------------------------===//

#include "native/Exchanger.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

using namespace compass::native;

namespace {

constexpr uint64_t OpsPerThread = 4'000;

std::unique_ptr<Exchanger<uint64_t>> GX;
std::atomic<uint64_t> GMatches{0};

void xSetup(const benchmark::State &) {
  GX = std::make_unique<Exchanger<uint64_t>>();
  GMatches.store(0);
}
void xTeardown(const benchmark::State &) { GX.reset(); }

void bmExchange(benchmark::State &State) {
  uint64_t V = (uint64_t(State.thread_index()) << 32) | 1;
  uint64_t Matches = 0;
  for (auto _ : State) {
    std::optional<uint64_t> Got = GX->exchange(V++, /*Attempts=*/2,
                                               /*Spins=*/512);
    Matches += Got.has_value();
    benchmark::DoNotOptimize(Got);
  }
  GMatches.fetch_add(Matches, std::memory_order_relaxed);
  if (State.thread_index() == 0)
    State.counters["match_rate"] = benchmark::Counter(
        double(GMatches.load()) /
        double(OpsPerThread * State.threads()));
  State.SetItemsProcessed(State.iterations());
}

} // namespace

int main(int argc, char **argv) {
  for (int Threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark("P3/exchanger/exchange", bmExchange)
        ->Threads(Threads)
        ->Iterations(OpsPerThread)
        ->Setup(xSetup)
        ->Teardown(xTeardown)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
