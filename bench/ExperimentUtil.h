//===-- bench/ExperimentUtil.h - Shared experiment drivers ------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the model-checking experiment binaries (E1-E7 in
/// DESIGN.md): simulated-thread workload helpers, per-execution check
/// plumbing and fixed-width table printing. Each bench binary prints the
/// rows of the paper artifact it regenerates; see EXPERIMENTS.md for the
/// mapping.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_BENCH_EXPERIMENTUTIL_H
#define COMPASS_BENCH_EXPERIMENTUTIL_H

#include "lib/Container.h"
#include "lib/HwQueue.h"
#include "lib/Locked.h"
#include "lib/MsQueue.h"
#include "lib/TreiberStack.h"
#include "sim/Explorer.h"
#include "spec/SpecMonitor.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

namespace compass::bench {

//===----------------------------------------------------------------------===//
// Bench output hygiene
//===----------------------------------------------------------------------===//

/// Parses and removes a `--bench-out <dir>` flag from argv (so later flag
/// parsers, e.g. benchmark::Initialize, never see it), defaulting to the
/// current working directory. Prints the resolved absolute output
/// directory, and — when the binary was built with assertions enabled
/// (no NDEBUG) — emits a loud warning so Debug numbers never silently land
/// in the committed perf trajectory.
inline std::string benchOutDir(int &Argc, char **Argv) {
  std::string Dir = ".";
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--bench-out")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--bench-out needs a directory\n");
        std::exit(2);
      }
      Dir = Argv[I + 1];
      for (int J = I; J + 2 <= Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      break;
    }
#ifndef NDEBUG
  std::fprintf(stderr,
               "*** WARNING ***********************************************\n"
               "* This benchmark binary was built WITHOUT NDEBUG:         *\n"
               "* assertions are live and numbers are NOT representative. *\n"
               "* Do not commit this run's BENCH_*.json. Use the          *\n"
               "* bench-lto CMake preset for recorded figures.            *\n"
               "***********************************************************\n");
#endif
  std::error_code Ec;
  std::filesystem::path Abs = std::filesystem::absolute(Dir, Ec);
  std::string Out = Ec ? Dir : Abs.lexically_normal().string();
  std::printf("bench output directory: %s\n", Out.c_str());
  return Out;
}

//===----------------------------------------------------------------------===//
// Table printing
//===----------------------------------------------------------------------===//

/// Fixed-width text table; print() renders header, separator and rows.
class Table {
public:
  explicit Table(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<size_t> Width(Header.size(), 0);
    auto Measure = [&](const std::vector<std::string> &Row) {
      for (size_t I = 0; I != Row.size() && I != Width.size(); ++I)
        if (Row[I].size() > Width[I])
          Width[I] = Row[I].size();
    };
    Measure(Header);
    for (const auto &Row : Rows)
      Measure(Row);

    auto PrintRow = [&](const std::vector<std::string> &Row) {
      std::printf("|");
      for (size_t I = 0; I != Width.size(); ++I) {
        const std::string &Cell = I < Row.size() ? Row[I] : std::string();
        std::printf(" %-*s |", static_cast<int>(Width[I]), Cell.c_str());
      }
      std::printf("\n");
    };
    PrintRow(Header);
    std::printf("|");
    for (size_t I = 0; I != Width.size(); ++I)
      std::printf("%s|", std::string(Width[I] + 2, '-').c_str());
    std::printf("\n");
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

inline std::string fmtU64(uint64_t V) { return std::to_string(V); }

/// "0" rendered as "none", otherwise the count — for violation columns.
inline std::string fmtViolations(uint64_t V) {
  return V == 0 ? "none" : std::to_string(V);
}

//===----------------------------------------------------------------------===//
// Simulated queue/stack workload helpers
//===----------------------------------------------------------------------===//

enum class QueueImpl { Ms, Hw, Locked };
enum class StackImpl { Treiber, Locked };

inline const char *queueImplName(QueueImpl K) {
  switch (K) {
  case QueueImpl::Ms:
    return "michael-scott";
  case QueueImpl::Hw:
    return "herlihy-wing";
  case QueueImpl::Locked:
    return "locked";
  }
  return "?";
}

inline const char *stackImplName(StackImpl K) {
  return K == StackImpl::Treiber ? "treiber" : "locked";
}

inline std::unique_ptr<lib::SimQueue>
makeQueue(QueueImpl K, rmc::Machine &M, spec::SpecMonitor &Mon) {
  switch (K) {
  case QueueImpl::Ms:
    return std::make_unique<lib::MsQueue>(M, Mon, "q");
  case QueueImpl::Hw:
    return std::make_unique<lib::HwQueue>(M, Mon, "q", 16);
  case QueueImpl::Locked:
    return std::make_unique<lib::LockedQueue>(M, Mon, "q", 16);
  }
  return nullptr;
}

inline std::unique_ptr<lib::SimStack>
makeStack(StackImpl K, rmc::Machine &M, spec::SpecMonitor &Mon) {
  if (K == StackImpl::Treiber)
    return std::make_unique<lib::TreiberStack>(M, Mon, "s");
  return std::make_unique<lib::LockedStack>(M, Mon, "s", 16);
}

inline sim::Task<void> enqueuer(sim::Env &E, lib::SimQueue &Q,
                                std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = Q.enqueue(E, V);
    co_await T;
  }
}

inline sim::Task<void> dequeuer(sim::Env &E, lib::SimQueue &Q, unsigned N,
                                std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = Q.dequeue(E);
    Out->push_back(co_await T);
  }
}

inline sim::Task<void> pusher(sim::Env &E, lib::SimStack &S,
                              std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = S.push(E, V);
    co_await T;
  }
}

inline sim::Task<void> popper(sim::Env &E, lib::SimStack &S, unsigned N,
                              std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = S.pop(E);
    Out->push_back(co_await T);
  }
}

/// Renders a workload like "enq[2]+enq[1] / deq[2]".
inline std::string
workloadName(const std::vector<std::vector<rmc::Value>> &Producers,
             const std::vector<unsigned> &Consumers, const char *ProdName,
             const char *ConsName) {
  std::string Out;
  for (size_t I = 0; I != Producers.size(); ++I) {
    if (I)
      Out += "+";
    Out += std::string(ProdName) + "[" +
           std::to_string(Producers[I].size()) + "]";
  }
  Out += " / ";
  for (size_t I = 0; I != Consumers.size(); ++I) {
    if (I)
      Out += "+";
    Out += std::string(ConsName) + "[" + std::to_string(Consumers[I]) + "]";
  }
  return Out;
}

} // namespace compass::bench

#endif // COMPASS_BENCH_EXPERIMENTUTIL_H
