//===-- bench/bench_queue_consistency.cpp - Experiment E2 (Figure 2) -------===//
//
// Regenerates the paper's queue-specification results (Figure 2, Sections
// 3.1-3.2): every explored execution of every queue implementation is
// checked against
//
//  * QueueConsistent — the graph-based LAT_hb spec (QUEUE-MATCHES,
//    QUEUE-FIFO, QUEUE-EMPDEQ, so ⊆ lhb, injectivity), and
//  * the abstract-state replay — the LAT_abs_hb strengthening.
//
// Expected shape (the paper's satisfiability claims):
//  * Michael-Scott (release/acquire) satisfies both;
//  * the relaxed Herlihy-Wing queue satisfies the graph spec but
//    *violates* the abstract-state spec on cross-thread enqueue workloads
//    ("extremely difficult to construct the abstract state ... would
//    require future-dependent knowledge", Section 3.2);
//  * the locked queue satisfies even the strict variants.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "spec/Consistency.h"

#include <cinttypes>

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

struct QcRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t StrictViolations = 0;
};

QcRow runWorkload(QueueImpl Impl,
                  std::vector<std::vector<Value>> Producers,
                  std::vector<unsigned> Consumers, unsigned Preemptions) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 250'000;

  QcRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::SimQueue> Q;
  std::vector<std::vector<Value>> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = makeQueue(Impl, M, *Mon);
        Got.assign(Consumers.size(), {});
        for (auto &Vs : Producers) {
          sim::Env &E = S.newThread();
          S.start(E, enqueuer(E, *Q, Vs));
        }
        for (size_t I = 0; I != Consumers.size(); ++I) {
          sim::Env &E = S.newThread();
          S.start(E, dequeuer(E, *Q, Consumers[I], &Got[I]));
        }
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        if (!checkQueueConsistent(Mon->graph(), Q->objId()).ok())
          ++Row.GraphViolations;
        if (!checkQueueAbsState(Mon->graph(), Q->objId()).ok())
          ++Row.AbsViolations;
        ContainerCheckOptions Strict;
        Strict.StrictEmpty = true;
        AbsStateOptions StrictAbs;
        StrictAbs.RequireTrueEmpty = true;
        if (!checkQueueConsistent(Mon->graph(), Q->objId(), Strict).ok() ||
            !checkQueueAbsState(Mon->graph(), Q->objId(), StrictAbs).ok())
          ++Row.StrictViolations;
      });
  Row.Executions = Sum.Executions;
  return Row;
}

} // namespace

int main() {
  std::printf("E2: queue implementations vs. spec strengths "
              "(paper Figure 2, Sections 3.1-3.2)\n\n");

  struct Workload {
    std::vector<std::vector<Value>> Producers;
    std::vector<unsigned> Consumers;
    unsigned Preemptions;
  };
  const Workload Workloads[] = {
      {{{1}}, {1}, ~0u},            // Fully exhaustive micro.
      {{{1, 2}}, {2}, 3},           // Program-ordered enqueues.
      {{{1}, {2}}, {2}, 2},         // Cross-thread enqueues.
      {{{1, 2}}, {1, 1}, 2},        // Competing dequeuers.
  };

  Table T({"queue", "workload", "executions", "checked",
           "LAT_hb (graph)", "LAT_abs_hb (state)", "strict (SC-only)"});

  struct Expect {
    bool GraphOk, AbsOk;
  };
  bool ShapeOk = true;
  uint64_t HwAbsViolationsTotal = 0;

  for (QueueImpl Impl : {QueueImpl::Ms, QueueImpl::Hw, QueueImpl::Locked}) {
    for (const Workload &W : Workloads) {
      QcRow Row = runWorkload(Impl, W.Producers, W.Consumers,
                              W.Preemptions);
      if (Impl == QueueImpl::Hw)
        HwAbsViolationsTotal += Row.AbsViolations;
      ShapeOk &= Row.GraphViolations == 0;
      if (Impl != QueueImpl::Hw)
        ShapeOk &= Row.AbsViolations == 0;
      if (Impl == QueueImpl::Locked)
        ShapeOk &= Row.StrictViolations == 0;
      T.addRow({queueImplName(Impl),
                workloadName(W.Producers, W.Consumers, "enq", "deq"),
                fmtU64(Row.Executions), fmtU64(Row.Checked),
                Row.GraphViolations ? "VIOLATED" : "holds",
                Row.AbsViolations
                    ? "violated (" + fmtU64(Row.AbsViolations) + "x)"
                    : "holds",
                Row.StrictViolations ? "violated" : "holds"});
    }
  }
  T.print();

  ShapeOk &= HwAbsViolationsTotal > 0;
  std::printf("\nPaper claims reproduced:\n"
              "  * all implementations satisfy the graph-based LAT_hb "
              "QueueConsistent spec;\n"
              "  * Herlihy-Wing fails LAT_abs_hb (%" PRIu64
              " executions with abstract-state violations)\n"
              "    while Michael-Scott satisfies it — the Section 3.2 "
              "separation;\n"
              "  * the locked queue satisfies even the strict SC-level "
              "conditions.\n%s\n",
              (uint64_t)HwAbsViolationsTotal,
              ShapeOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return ShapeOk ? 0 : 1;
}
