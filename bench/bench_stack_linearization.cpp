//===-- bench/bench_stack_linearization.cpp - Experiment E4 (Figure 4) -----===//
//
// Regenerates the LAT_hist_hb stack result of Section 3.3 / Figure 4: for
// every explored execution of the relaxed Treiber stack (release-CAS
// pushes, acquire-CAS pops), a total order `to` exists that respects lhb
// and is interpretable by the sequential stack semantics — the
// linearizable-history spec. Also reports the LAT_hb StackConsistent
// check and the abstract-state replay, and the search effort.
//
// Expected shape: a witness linearization exists for every history; the
// LAT_hb conditions hold throughout.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

struct LinRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t NoWitness = 0;
  uint64_t SearchStates = 0;
};

LinRow runWorkload(StackImpl Impl,
                   std::vector<std::vector<Value>> Pushers,
                   std::vector<unsigned> Poppers, unsigned Preemptions) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 250'000;

  LinRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::SimStack> St;
  std::vector<std::vector<Value>> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        St = makeStack(Impl, M, *Mon);
        Got.assign(Poppers.size(), {});
        for (auto &Vs : Pushers) {
          sim::Env &E = S.newThread();
          S.start(E, pusher(E, *St, Vs));
        }
        for (size_t I = 0; I != Poppers.size(); ++I) {
          sim::Env &E = S.newThread();
          S.start(E, popper(E, *St, Poppers[I], &Got[I]));
        }
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        if (!checkStackConsistent(Mon->graph(), St->objId()).ok())
          ++Row.GraphViolations;
        auto LR = findLinearization(Mon->graph(), St->objId(),
                                    SeqSpec::Stack);
        Row.SearchStates += LR.StatesExplored;
        if (!LR.Found)
          ++Row.NoWitness;
      });
  Row.Executions = Sum.Executions;
  return Row;
}

} // namespace

int main() {
  std::printf("E4: LAT_hist_hb linearizable-history spec for stacks "
              "(paper Figure 4, Section 3.3)\n\n");

  struct Workload {
    std::vector<std::vector<Value>> Pushers;
    std::vector<unsigned> Poppers;
    unsigned Preemptions;
  };
  const Workload Workloads[] = {
      {{{1}}, {1}, ~0u},
      {{{1, 2}}, {2}, 3},
      {{{1}, {2}}, {2}, 2},
      {{{1, 2}}, {1, 1}, 2},
  };

  Table T({"stack", "workload", "executions", "checked", "LAT_hb (graph)",
           "LAT_hist witness", "search states"});

  bool AllOk = true;
  for (StackImpl Impl : {StackImpl::Treiber, StackImpl::Locked}) {
    for (const Workload &W : Workloads) {
      LinRow Row = runWorkload(Impl, W.Pushers, W.Poppers, W.Preemptions);
      AllOk &= Row.GraphViolations == 0 && Row.NoWitness == 0 &&
               Row.Checked > 0;
      T.addRow({stackImplName(Impl),
                workloadName(W.Pushers, W.Poppers, "push", "pop"),
                fmtU64(Row.Executions), fmtU64(Row.Checked),
                Row.GraphViolations ? "VIOLATED" : "holds",
                Row.NoWitness ? "MISSING (" + fmtU64(Row.NoWitness) + "x)"
                              : "found in all",
                fmtU64(Row.SearchStates)});
    }
  }
  T.print();
  std::printf("\nPaper claim reproduced: the relaxed Treiber stack "
              "satisfies the linearizable-history\nspec — a total order "
              "to ⊇ lhb with interp(to, vs) exists for every recorded "
              "history.\n%s\n",
              AllOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
