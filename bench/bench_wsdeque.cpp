//===-- bench/bench_wsdeque.cpp - Experiment E8 (Section 6 future work) ----===//
//
// The paper's Section 6 closes with: "we would like to apply the COMPASS
// approach to more sophisticated RMC libraries such as work-stealing
// queues [12, 50]". This experiment does exactly that: the Chase-Lev
// deque with the C11 orderings of Lê et al. [50] is checked, over every
// explored execution, against
//
//  * WsDequeConsistent — the graph conditions (owner discipline, MATCHES,
//    injectivity, so ⊆ lhb, the empty axioms over lhb);
//  * the double-ended abstract-state replay (LAT_abs_hb style);
//  * the SeqSpec::WsDeque linearization search (LAT_hist_hb style).
//
// Also includes native throughput rows for the std::atomic twin.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "lib/WsDeque.h"
#include "native/WsDeque.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

#include <chrono>
#include <thread>

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

Task<void> owner(Env &E, lib::WsDeque &D, std::vector<Value> Vs,
                 unsigned Takes) {
  for (Value V : Vs) {
    auto T = D.push(E, V);
    co_await T;
  }
  for (unsigned I = 0; I != Takes; ++I) {
    auto T = D.take(E);
    co_await T;
  }
}

Task<void> thief(Env &E, lib::WsDeque &D, unsigned Steals) {
  for (unsigned I = 0; I != Steals; ++I) {
    auto T = D.steal(E);
    co_await T;
  }
}

struct DqRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t NoWitness = 0;
};

DqRow runWorkload(std::vector<Value> Pushes, unsigned Takes,
                  unsigned Thieves, unsigned Steals,
                  unsigned Preemptions) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 300'000;

  DqRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::WsDeque> D;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        D = std::make_unique<lib::WsDeque>(M, *Mon, "d", 16);
        Env &E0 = S.newThread();
        S.start(E0, owner(E0, *D, Pushes, Takes));
        for (unsigned I = 0; I != Thieves; ++I) {
          Env &E = S.newThread();
          S.start(E, thief(E, *D, Steals));
        }
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        if (!checkWsDequeConsistent(Mon->graph(), D->objId()).ok())
          ++Row.GraphViolations;
        if (!checkWsDequeAbsState(Mon->graph(), D->objId()).ok())
          ++Row.AbsViolations;
        if (!findLinearization(Mon->graph(), D->objId(),
                               SeqSpec::WsDeque)
                 .Found)
          ++Row.NoWitness;
      });
  Row.Executions = Sum.Executions;
  return Row;
}

void nativeThroughput() {
  std::printf("\nnative Chase-Lev twin (std::atomic), owner + 1 thief, "
              "40000 items:\n");
  native::WsDeque<uint64_t> D(2048);
  constexpr uint64_t N = 40'000;
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Stolen{0}, Taken{0};

  auto Start = std::chrono::steady_clock::now();
  std::thread Owner([&] {
    uint64_t Next = 1;
    while (Next <= N) {
      if (D.push(Next)) {
        ++Next;
        continue;
      }
      if (D.take())
        Taken.fetch_add(1, std::memory_order_relaxed);
    }
    while (D.take())
      Taken.fetch_add(1, std::memory_order_relaxed);
    Done.store(true, std::memory_order_release);
  });
  std::thread Thief([&] {
    uint64_t Out;
    for (;;) {
      auto R = D.steal(Out);
      if (R == native::WsDeque<uint64_t>::StealResult::Ok) {
        Stolen.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (Done.load(std::memory_order_acquire) &&
          R == native::WsDeque<uint64_t>::StealResult::Empty)
        break;
      std::this_thread::yield();
    }
  });
  Owner.join();
  Thief.join();
  while (D.take())
    Taken.fetch_add(1, std::memory_order_relaxed);
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  uint64_t Total = Stolen.load() + Taken.load();
  std::printf("  taken=%llu stolen=%llu conserved=%s in %lld us "
              "(%.1f M items/s)\n",
              (unsigned long long)Taken.load(),
              (unsigned long long)Stolen.load(),
              Total == N ? "yes" : "NO", (long long)Us,
              Us ? double(N) / double(Us) : 0.0);
}

} // namespace

int main() {
  std::printf("E8: Chase-Lev work-stealing deque — the paper's Section 6 "
              "future work,\nrealized with the Le et al. [50] C11 "
              "orderings and verified in the framework\n\n");

  struct Workload {
    const char *Name;
    std::vector<Value> Pushes;
    unsigned Takes, Thieves, Steals, Preemptions;
  };
  const Workload Workloads[] = {
      {"owner solo: push[3] take[3]", {1, 2, 3}, 3, 0, 0, ~0u},
      {"last-element race: push[1] take[1] vs steal[1]", {7}, 1, 1, 1,
       ~0u},
      {"push[2] take[2] vs steal[2]", {1, 2}, 2, 1, 2, 2},
      {"push[2] vs 2 thieves", {1, 2}, 0, 2, 1, 2},
  };

  Table T({"workload", "executions", "checked", "WsDequeConsistent",
           "abs state", "LAT_hist witness"});
  bool AllOk = true;
  for (const Workload &W : Workloads) {
    DqRow Row = runWorkload(W.Pushes, W.Takes, W.Thieves, W.Steals,
                            W.Preemptions);
    AllOk &= Row.GraphViolations == 0 && Row.AbsViolations == 0 &&
             Row.NoWitness == 0 && Row.Checked > 0;
    T.addRow({W.Name, fmtU64(Row.Executions), fmtU64(Row.Checked),
              Row.GraphViolations ? "VIOLATED" : "holds",
              Row.AbsViolations ? "VIOLATED" : "holds",
              Row.NoWitness ? "MISSING" : "found in all"});
  }
  T.print();

  nativeThroughput();

  std::printf("\nSection 6's future-work item realized: the Chase-Lev "
              "deque satisfies the\ngraph, abstract-state and "
              "linearizable-history specs in every execution. %s\n",
              AllOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
