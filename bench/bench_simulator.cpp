//===-- bench/bench_simulator.cpp - Experiment P4 (framework costs) --------===//
//
// Microbenchmarks of the verification framework itself — the analog of
// reporting proof-checking effort: raw view-machine operation throughput
// (with the logical-view piggyback that realizes the paper's SeenX ghost
// state), end-to-end model-checking throughput (executions/second of
// a two-thread Michael-Scott workload, including event-graph recording
// and consistency checking), and — since the explorer is the framework's
// performance ceiling — a parallel-scaling table over 1/2/4 workers for
// the litmus and MS-queue workloads. Results are also dumped to
// BENCH_simulator.json so the perf trajectory is tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "check/Harness.h"
#include "check/ScenarioGen.h"
#include "lib/MsQueue.h"
#include "sim/ParallelExplorer.h"
#include "sim/Workload.h"
#include "spec/Consistency.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <thread>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

void bmMachineRelAcq(benchmark::State &State) {
  FirstChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc F = M.alloc("f");
  // One release write + one acquire read per iteration; history grows, so
  // re-create periodically to keep the working set bounded.
  uint64_t I = 0;
  Machine *Mp = &M;
  std::unique_ptr<Machine> Fresh;
  for (auto _ : State) {
    if (++I % 4096 == 0) {
      Fresh = std::make_unique<Machine>(C);
      T0 = Fresh->addThread();
      T1 = Fresh->addThread();
      F = Fresh->alloc("f");
      Mp = Fresh.get();
    }
    Mp->store(T0, F, I, MemOrder::Release);
    benchmark::DoNotOptimize(Mp->load(T1, F, MemOrder::Acquire));
  }
  State.SetItemsProcessed(State.iterations() * 2);
  State.SetLabel("machine ops (rel store + acq load)");
}

void bmMachineCas(benchmark::State &State) {
  FirstChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  uint64_t I = 0;
  Machine *Mp = &M;
  std::unique_ptr<Machine> Fresh;
  for (auto _ : State) {
    if (++I % 4096 == 0) {
      Fresh = std::make_unique<Machine>(C);
      T0 = Fresh->addThread();
      X = Fresh->alloc("x");
      Mp = Fresh.get();
      I = 1;
    }
    benchmark::DoNotOptimize(
        Mp->cas(T0, X, I - 1, I, MemOrder::AcqRel));
  }
  State.SetItemsProcessed(State.iterations());
  State.SetLabel("machine acq_rel CAS");
}

sim::Task<void> benchEnqueuer(sim::Env &E, lib::MsQueue &Q) {
  auto T1 = Q.enqueue(E, 1);
  co_await T1;
  auto T2 = Q.enqueue(E, 2);
  co_await T2;
}

sim::Task<void> benchDequeuer(sim::Env &E, lib::MsQueue &Q) {
  auto T1 = Q.dequeue(E);
  co_await T1;
  auto T2 = Q.dequeue(E);
  co_await T2;
}

void bmExplorerExecution(benchmark::State &State) {
  // Random-mode executions of a 2-thread MS-queue workload, including
  // event recording and the QueueConsistent check per execution.
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = ~0ull;
  Opts.Seed = 42;
  Explorer Ex(Opts);
  for (auto _ : State) {
    if (!Ex.beginExecution())
      break;
    Machine M(Ex);
    Scheduler S(M, Ex);
    spec::SpecMonitor Mon;
    lib::MsQueue Q(M, Mon, "q");
    sim::Env &E0 = S.newThread();
    S.start(E0, benchEnqueuer(E0, Q));
    sim::Env &E1 = S.newThread();
    S.start(E1, benchDequeuer(E1, Q));
    auto R = S.run(100000);
    benchmark::DoNotOptimize(
        spec::checkQueueConsistent(Mon.graph(), Q.objId()).ok());
    Ex.endExecution(R);
  }
  State.SetItemsProcessed(State.iterations());
  State.SetLabel("model-checked executions (2-thread MS queue)");
}

//===----------------------------------------------------------------------===//
// Parallel-scaling table
//===----------------------------------------------------------------------===//

Task<void> sbThread(Env &E, Loc Mine, Loc Theirs) {
  co_await E.store(Mine, 1, MemOrder::Relaxed);
  co_await E.load(Theirs, MemOrder::Relaxed);
}

Task<void> mpWriterT(Env &E, Loc X, Loc F) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, MemOrder::Release);
}

Task<void> mpReaderT(Env &E, Loc X, Loc F) {
  co_await E.load(F, MemOrder::Acquire);
  co_await E.load(X, MemOrder::Relaxed);
}

Workload sbWorkload(unsigned Workers) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  return Workload(Opts, []() -> Workload::Body {
    Workload::Body B{[](Machine &M, Scheduler &S) {
      Loc X = M.alloc("x"), Y = M.alloc("y");
      Env &E0 = S.newThread();
      S.start(E0, sbThread(E0, X, Y));
      Env &E1 = S.newThread();
      S.start(E1, sbThread(E1, Y, X));
    }};
    B.CowSafe = true; // No state outside the machine and coroutine locals.
    B.CowSkipFinished = true;
    return B;
  });
}

Workload mpWorkload(unsigned Workers) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  return Workload(Opts, []() -> Workload::Body {
    Workload::Body B{[](Machine &M, Scheduler &S) {
      Loc X = M.alloc("x"), F = M.alloc("f");
      Env &E0 = S.newThread();
      S.start(E0, mpWriterT(E0, X, F));
      Env &E1 = S.newThread();
      S.start(E1, mpReaderT(E1, X, F));
    }};
    B.CowSafe = true; // No state outside the machine and coroutine locals.
    B.CowSkipFinished = true;
    return B;
  });
}

/// The E2 MS-queue configuration (enq{1,2} + 2 dequeuers, preemption
/// bound 2), checked against QueueConsistent every execution. The body
/// factory gives each worker private monitor/queue state.
Workload msQueueWorkload(unsigned Workers, uint64_t MaxExecutions,
                         ReductionMode Red = ReductionMode::None,
                         unsigned Pb = 2) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = Pb;
  Opts.MaxExecutions = MaxExecutions;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::MsQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{[St](Machine &M, Scheduler &S) {
                       if (!St->Mon)
                         St->Mon = std::make_unique<spec::SpecMonitor>();
                       St->Mon->beginExecution(M);
                       St->Q = std::make_unique<lib::MsQueue>(M, *St->Mon, "q");
                       St->Got0.clear();
                       St->Got1.clear();
                       Env &E0 = S.newThread();
                       S.start(E0, bench::enqueuer(E0, *St->Q, {1, 2}));
                       Env &E1 = S.newThread();
                       S.start(E1, bench::dequeuer(E1, *St->Q, 1, &St->Got0));
                       Env &E2 = S.newThread();
                       S.start(E2, bench::dequeuer(E2, *St->Q, 1, &St->Got1));
                     },
                     [St](Machine &, Scheduler &, Scheduler::RunResult R) {
                       if (R != Scheduler::RunResult::Done)
                         return true; // deadlocks/limits counted, not failed
                       return spec::checkQueueConsistent(St->Mon->graph(),
                                                         St->Q->objId())
                           .ok();
                     }};
    // The cross-step client state is the monitor plus the Got vectors
    // (the queue object is rebuilt by Setup). Restoring Got after the
    // fast-forward also covers finished-thread skipping.
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    B.CowSkipFinished = true;
    return B;
  });
}

/// The locked-queue verification workload (E7's slowest row): coarse
/// lock acquire/release around every operation makes spinning readers on
/// the lock cell the dominant interleaving source — exactly the
/// commuting-reads pattern the sleep-set reduction collapses.
Workload lockedQueueWorkload(unsigned Workers, ReductionMode Red,
                             uint64_t MaxExecutions, unsigned Pb = 2) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = Pb;
  Opts.MaxExecutions = MaxExecutions;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::LockedQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{
        [St](Machine &M, Scheduler &S) {
          if (!St->Mon)
                         St->Mon = std::make_unique<spec::SpecMonitor>();
                       St->Mon->beginExecution(M);
          St->Q = std::make_unique<lib::LockedQueue>(M, *St->Mon, "q", 16);
          St->Got0.clear();
          St->Got1.clear();
          Env &E0 = S.newThread();
          S.start(E0, bench::enqueuer(E0, *St->Q, {1, 2}));
          Env &E1 = S.newThread();
          S.start(E1, bench::dequeuer(E1, *St->Q, 1, &St->Got0));
          Env &E2 = S.newThread();
          S.start(E2, bench::dequeuer(E2, *St->Q, 1, &St->Got1));
        },
        [St](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return true;
          return spec::checkQueueConsistent(St->Mon->graph(), St->Q->objId())
              .ok();
        }};
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    B.CowSkipFinished = true;
    return B;
  });
}

struct ScaleRow {
  std::string Name;
  unsigned Workers;
  Explorer::Summary Sum;
  double Speedup;
};

std::string fmtF(double V, const char *Fmt = "%.0f") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  return Buf;
}

void runScaling(std::vector<ScaleRow> &Rows, const std::string &Name,
                Workload (*Make)(unsigned)) {
  double Base = 0;
  for (unsigned W : {1u, 2u, 4u}) {
    Explorer::Summary Sum = explore(Make(W));
    if (W == 1)
      Base = Sum.Perf.ExecsPerSec;
    Rows.push_back({Name, W, Sum,
                    Base > 0 ? Sum.Perf.ExecsPerSec / Base : 0.0});
  }
}

void printScalingTable(const std::vector<ScaleRow> &Rows) {
  std::printf("\nP4b: parallel exploration scaling (executions/second; "
              "hardware threads available: %u)\n\n",
              std::thread::hardware_concurrency());
  bench::Table T({"workload", "workers", "executions", "exhausted",
                  "execs/sec", "speedup", "peak frontier", "peak queue"});
  for (const ScaleRow &R : Rows)
    T.addRow({R.Name, bench::fmtU64(R.Workers),
              bench::fmtU64(R.Sum.Executions),
              R.Sum.Exhausted ? "yes" : "no",
              fmtF(R.Sum.Perf.ExecsPerSec),
              fmtF(R.Speedup, "%.2fx"),
              bench::fmtU64(R.Sum.Perf.PeakFrontier),
              bench::fmtU64(R.Sum.Perf.PeakQueue)});
  T.print();
}

//===----------------------------------------------------------------------===//
// Partial-order reduction before/after (E10 sleep sets, E14 source sets)
//===----------------------------------------------------------------------===//

struct RedRow {
  std::string Name;
  ReductionMode Red;
  Explorer::Summary Sum;
  double ExecRatio = 1.0;  ///< Unreduced executions / this row's executions.
  double WallRatio = 1.0;  ///< Unreduced wall / this row's wall.
  double VsSleep = 1.0;    ///< Sleep-set executions / this row's executions.
};

const char *redName(ReductionMode R) {
  switch (R) {
  case ReductionMode::None:
    return "none";
  case ReductionMode::SleepSet:
    return "sleep-set";
  case ReductionMode::SourceSet:
    return "source-set";
  }
  return "?";
}

/// One E9-style conformance scenario (3-thread MS queue, full
/// reference-model verdict per execution) at preemption bound \p Pb —
/// the per-scenario unit the conformance sweep runs thousands of times,
/// so its reduction ratio is the one that decides whether pb=3 sweeps
/// are reachable.
Workload conformanceWorkload(unsigned Workers, ReductionMode Red,
                             uint64_t MaxExecutions, unsigned Pb) {
  check::GenOptions G;
  G.MinThreads = G.MaxThreads = 3;
  G.MinOpsPerThread = 2;
  G.MaxOpsPerThread = 3;
  check::Scenario S = check::generateScenario(
      check::Lib::MsQueue, check::scenarioSeed(1, check::Lib::MsQueue, 0), G);
  Explorer::Options Opts =
      check::scenarioOptions(S, MaxExecutions, Workers, Red);
  Opts.PreemptionBound = Pb;
  return check::makeWorkload(S, check::Mutation::None, Opts);
}

void runReduction(std::vector<RedRow> &Rows, const std::string &Name,
                  Workload (*Make)(unsigned, ReductionMode, uint64_t),
                  uint64_t MaxExecutions) {
  Explorer::Summary Base, Sleep;
  for (ReductionMode R : {ReductionMode::None, ReductionMode::SleepSet,
                          ReductionMode::SourceSet}) {
    Explorer::Summary Sum = explore(Make(1, R, MaxExecutions));
    RedRow Row{Name, R, Sum, 1.0, 1.0, 1.0};
    if (R == ReductionMode::None)
      Base = Sum;
    else {
      Row.ExecRatio = Sum.Executions
                          ? static_cast<double>(Base.Executions) /
                                static_cast<double>(Sum.Executions)
                          : 0.0;
      Row.WallRatio = Sum.Perf.WallSeconds > 0
                          ? Base.Perf.WallSeconds / Sum.Perf.WallSeconds
                          : 0.0;
    }
    if (R == ReductionMode::SleepSet)
      Sleep = Sum;
    else if (R == ReductionMode::SourceSet)
      Row.VsSleep = Sum.Executions
                        ? static_cast<double>(Sleep.Executions) /
                              static_cast<double>(Sum.Executions)
                        : 0.0;
    Rows.push_back(std::move(Row));
  }
}

void printReductionTable(const std::vector<RedRow> &Rows) {
  std::printf("\nE10/E14: partial-order reduction before/after (serial; "
              "sleep sets vs source-set DPOR + rf pruning + state cache)\n\n");
  bench::Table T({"workload", "reduction", "executions", "sleep-pruned",
                  "rf-pruned", "src-pruned", "cache-hits", "exhausted",
                  "wall s", "exec ratio", "vs sleep"});
  for (const RedRow &R : Rows)
    T.addRow({R.Name, redName(R.Red), bench::fmtU64(R.Sum.Executions),
              bench::fmtU64(R.Sum.SleepPruned),
              bench::fmtU64(R.Sum.RfPruned),
              bench::fmtU64(R.Sum.SourcePruned),
              bench::fmtU64(R.Sum.CacheHits),
              R.Sum.Exhausted ? "yes" : "no",
              fmtF(R.Sum.Perf.WallSeconds, "%.2f"),
              R.Red == ReductionMode::None ? "1.00x"
                                           : fmtF(R.ExecRatio, "%.2fx"),
              R.Red == ReductionMode::SourceSet ? fmtF(R.VsSleep, "%.2fx")
                                                : "-"});
  T.print();
}

void writeJson(const std::vector<ScaleRow> &Rows,
               const std::vector<RedRow> &RedRows,
               const std::string &OutDir) {
  const unsigned Hw = std::thread::hardware_concurrency();
  JsonWriter J;
  J.beginObject();
  J.field("experiment", "P4b parallel exploration scaling");
  J.field("hardware_threads", static_cast<uint64_t>(Hw));
  J.key("rows");
  J.beginArray();
  for (const ScaleRow &R : Rows) {
    J.beginObject();
    J.field("workload", R.Name);
    J.field("workers", R.Workers);
    // Stamped at produce time so comparisons on a different machine still
    // know this row measured scheduler thrash, not the engine.
    J.field("oversubscribed", R.Workers > Hw);
    J.field("executions", R.Sum.Executions);
    J.field("exhausted", R.Sum.Exhausted);
    J.field("violations", R.Sum.Violations);
    J.field("wall_seconds", R.Sum.Perf.WallSeconds);
    J.field("execs_per_sec", R.Sum.Perf.ExecsPerSec);
    J.field("speedup_vs_serial", R.Speedup);
    J.field("max_depth", R.Sum.MaxDepth);
    J.field("peak_frontier", R.Sum.Perf.PeakFrontier);
    J.field("peak_queue", R.Sum.Perf.PeakQueue);
    J.endObject();
  }
  J.endArray();
  J.key("reduction_rows");
  J.beginArray();
  for (const RedRow &R : RedRows) {
    J.beginObject();
    J.field("workload", R.Name);
    J.field("reduction", redName(R.Red));
    J.field("executions", R.Sum.Executions);
    J.field("sleep_pruned", R.Sum.SleepPruned);
    J.field("rf_pruned", R.Sum.RfPruned);
    J.field("source_pruned", R.Sum.SourcePruned);
    J.field("cache_hits", R.Sum.CacheHits);
    J.field("completed", R.Sum.Completed);
    J.field("exhausted", R.Sum.Exhausted);
    J.field("wall_seconds", R.Sum.Perf.WallSeconds);
    J.field("execs_per_sec", R.Sum.Perf.ExecsPerSec);
    J.field("exec_ratio_vs_unreduced", R.ExecRatio);
    J.field("wall_ratio_vs_unreduced", R.WallRatio);
    J.field("exec_ratio_vs_sleep", R.VsSleep);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  std::string Path = OutDir + "/BENCH_simulator.json";
  std::ofstream Out(Path);
  Out << J.str() << "\n";
  std::printf("\nwrote %s\n", Path.c_str());
}

} // namespace

BENCHMARK(bmMachineRelAcq)->Iterations(200'000);
BENCHMARK(bmMachineCas)->Iterations(200'000);
BENCHMARK(bmExplorerExecution)->Iterations(3'000);

int main(int argc, char **argv) {
  std::string OutDir = bench::benchOutDir(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<ScaleRow> Rows;
  runScaling(Rows, "SB litmus", sbWorkload);
  runScaling(Rows, "MP litmus", mpWorkload);
  runScaling(Rows, "MS queue (E2, pb=2)", +[](unsigned W) {
    return msQueueWorkload(W, 500'000);
  });
  printScalingTable(Rows);

  std::vector<RedRow> RedRows;
  runReduction(RedRows, "locked queue (E7, pb=2)",
               +[](unsigned W, ReductionMode R, uint64_t Max) {
                 return lockedQueueWorkload(W, R, Max, 2);
               },
               4'000'000);
  runReduction(RedRows, "MS queue (E2, pb=2)",
               +[](unsigned W, ReductionMode R, uint64_t Max) {
                 return msQueueWorkload(W, Max, R, 2);
               },
               4'000'000);
  // The pb=3 rows are the acceptance bar for source-set DPOR: the E7
  // locked queue and an E9 conformance scenario, where sleep sets alone
  // left pb=3 out of reach (ROADMAP item 2).
  runReduction(RedRows, "locked queue (E7, pb=3)",
               +[](unsigned W, ReductionMode R, uint64_t Max) {
                 return lockedQueueWorkload(W, R, Max, 3);
               },
               8'000'000);
  runReduction(RedRows, "conformance MS queue (E9, pb=3)",
               +[](unsigned W, ReductionMode R, uint64_t Max) {
                 return conformanceWorkload(W, R, Max, 3);
               },
               8'000'000);
  printReductionTable(RedRows);

  writeJson(Rows, RedRows, OutDir);
  return 0;
}
