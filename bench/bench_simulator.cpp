//===-- bench/bench_simulator.cpp - Experiment P4 (framework costs) --------===//
//
// Microbenchmarks of the verification framework itself — the analog of
// reporting proof-checking effort: raw view-machine operation throughput
// (with the logical-view piggyback that realizes the paper's SeenX ghost
// state), and end-to-end model-checking throughput (executions/second of
// a two-thread Michael-Scott workload, including event-graph recording
// and consistency checking).
//
//===----------------------------------------------------------------------===//

#include "lib/MsQueue.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"

#include <benchmark/benchmark.h>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

void bmMachineRelAcq(benchmark::State &State) {
  FirstChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc F = M.alloc("f");
  // One release write + one acquire read per iteration; history grows, so
  // re-create periodically to keep the working set bounded.
  uint64_t I = 0;
  Machine *Mp = &M;
  std::unique_ptr<Machine> Fresh;
  for (auto _ : State) {
    if (++I % 4096 == 0) {
      Fresh = std::make_unique<Machine>(C);
      T0 = Fresh->addThread();
      T1 = Fresh->addThread();
      F = Fresh->alloc("f");
      Mp = Fresh.get();
    }
    Mp->store(T0, F, I, MemOrder::Release);
    benchmark::DoNotOptimize(Mp->load(T1, F, MemOrder::Acquire));
  }
  State.SetItemsProcessed(State.iterations() * 2);
  State.SetLabel("machine ops (rel store + acq load)");
}

void bmMachineCas(benchmark::State &State) {
  FirstChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  uint64_t I = 0;
  Machine *Mp = &M;
  std::unique_ptr<Machine> Fresh;
  for (auto _ : State) {
    if (++I % 4096 == 0) {
      Fresh = std::make_unique<Machine>(C);
      T0 = Fresh->addThread();
      X = Fresh->alloc("x");
      Mp = Fresh.get();
      I = 1;
    }
    benchmark::DoNotOptimize(
        Mp->cas(T0, X, I - 1, I, MemOrder::AcqRel));
  }
  State.SetItemsProcessed(State.iterations());
  State.SetLabel("machine acq_rel CAS");
}

sim::Task<void> benchEnqueuer(sim::Env &E, lib::MsQueue &Q) {
  auto T1 = Q.enqueue(E, 1);
  co_await T1;
  auto T2 = Q.enqueue(E, 2);
  co_await T2;
}

sim::Task<void> benchDequeuer(sim::Env &E, lib::MsQueue &Q) {
  auto T1 = Q.dequeue(E);
  co_await T1;
  auto T2 = Q.dequeue(E);
  co_await T2;
}

void bmExplorerExecution(benchmark::State &State) {
  // Random-mode executions of a 2-thread MS-queue workload, including
  // event recording and the QueueConsistent check per execution.
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = ~0ull;
  Opts.Seed = 42;
  Explorer Ex(Opts);
  for (auto _ : State) {
    if (!Ex.beginExecution())
      break;
    Machine M(Ex);
    Scheduler S(M, Ex);
    spec::SpecMonitor Mon;
    lib::MsQueue Q(M, Mon, "q");
    sim::Env &E0 = S.newThread();
    S.start(E0, benchEnqueuer(E0, Q));
    sim::Env &E1 = S.newThread();
    S.start(E1, benchDequeuer(E1, Q));
    auto R = S.run(100000);
    benchmark::DoNotOptimize(
        spec::checkQueueConsistent(Mon.graph(), Q.objId()).ok());
    Ex.endExecution(R);
  }
  State.SetItemsProcessed(State.iterations());
  State.SetLabel("model-checked executions (2-thread MS queue)");
}

} // namespace

BENCHMARK(bmMachineRelAcq)->Iterations(200'000);
BENCHMARK(bmMachineCas)->Iterations(200'000);
BENCHMARK(bmExplorerExecution)->Iterations(3'000);

BENCHMARK_MAIN();
