//===-- bench/bench_elimination_stack.cpp - Experiment E6 (Section 4.1) ----===//
//
// Regenerates the compositional elimination-stack verification: the ES
// event graph is *derived* from the base Treiber stack's and exchanger's
// graphs by the Section 4.1 simulation relation (base events carry over;
// a matched pusher/popper exchange pair becomes an adjacent Push/Pop pair
// — atomic elimination), and StackConsistent plus the linearizable-
// history check are evaluated on the derived graph. No memory-level
// reasoning about the ES implementation is involved: the composition uses
// only the component specs' artifacts, exactly as the paper's modular
// proof does.
//
// Expected shape: zero violations on every workload, with eliminations
// actually observed under contention.
//
//===----------------------------------------------------------------------===//

#include "ExperimentUtil.h"
#include "lib/ElimStack.h"
#include "spec/Composition.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

using namespace compass;
using namespace compass::bench;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

constexpr unsigned EsObjId = 100;

sim::Task<void> esPusher(sim::Env &E, lib::ElimStack &S,
                         std::vector<Value> Vs, unsigned Rounds) {
  for (Value V : Vs) {
    auto T = S.push(E, V, Rounds);
    co_await T;
  }
}

sim::Task<void> esPopper(sim::Env &E, lib::ElimStack &S, unsigned N,
                         unsigned Rounds) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = S.pop(E, Rounds);
    co_await T;
  }
}

struct EsRow {
  uint64_t Executions = 0;
  uint64_t Checked = 0;
  uint64_t Violations = 0;
  uint64_t NoWitness = 0;
  uint64_t Eliminations = 0;
};

EsRow runWorkload(std::vector<std::vector<Value>> Pushers,
                  std::vector<unsigned> Poppers, unsigned Rounds,
                  unsigned Preemptions, uint64_t MaxExecs) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = MaxExecs;

  EsRow Row;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::ElimStack> St;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        St = std::make_unique<lib::ElimStack>(M, *Mon, "es");
        for (auto &Vs : Pushers) {
          sim::Env &E = S.newThread();
          S.start(E, esPusher(E, *St, Vs, Rounds));
        }
        for (unsigned N : Poppers) {
          sim::Env &E = S.newThread();
          S.start(E, esPopper(E, *St, N, Rounds));
        }
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Row.Checked;
        graph::EventGraph Es = buildElimStackGraph(
            Mon->graph(), St->baseObjId(), St->exchangerObjId(), EsObjId);
        for (graph::EventId Id : Es.objectEvents(EsObjId))
          if (Es.event(Id).Kind == graph::OpKind::Push &&
              Mon->graph().isCommitted(Id) &&
              Mon->graph().event(Id).Kind == graph::OpKind::Exchange)
            ++Row.Eliminations;
        if (!checkStackConsistent(Es, EsObjId).ok())
          ++Row.Violations;
        if (!findLinearization(Es, EsObjId, SeqSpec::Stack).Found)
          ++Row.NoWitness;
      });
  Row.Executions = Sum.Executions;
  return Row;
}

} // namespace

int main() {
  std::printf("E6: compositional elimination-stack verification "
              "(paper Section 4.1)\n\n");

  struct Workload {
    std::vector<std::vector<Value>> Pushers;
    std::vector<unsigned> Poppers;
    unsigned Rounds, Preemptions;
    uint64_t MaxExecs;
    bool ExpectElims;
  };
  const Workload Workloads[] = {
      {{{1, 2}}, {}, 2, 0, 250'000, false},       // Sequential sanity.
      {{{1}}, {1}, 2, 2, 250'000, false},          // Pair.
      {{{1, 2}}, {1, 1}, 3, 2, 150'000, true},    // Contention: eliminate.
  };

  Table T({"workload", "executions", "checked", "StackConsistent",
           "LAT_hist witness", "eliminations observed"});

  bool AllOk = true;
  for (const Workload &W : Workloads) {
    EsRow Row = runWorkload(W.Pushers, W.Poppers, W.Rounds, W.Preemptions,
                            W.MaxExecs);
    AllOk &= Row.Violations == 0 && Row.NoWitness == 0 && Row.Checked > 0;
    if (W.ExpectElims)
      AllOk &= Row.Eliminations > 0;
    T.addRow({workloadName(W.Pushers, W.Poppers, "push", "pop"),
              fmtU64(Row.Executions), fmtU64(Row.Checked),
              Row.Violations ? "VIOLATED" : "holds",
              Row.NoWitness ? "MISSING" : "found in all",
              fmtU64(Row.Eliminations)});
  }
  T.print();
  std::printf("\nPaper claim reproduced: the composed graph (base events "
              "+ atomically-paired\neliminations) satisfies "
              "StackConsistent in every execution — Section 4.1's\n"
              "modular verification, relying only on the component "
              "specs. %s\n",
              AllOk ? "ALL ROWS AS EXPECTED." : "DEVIATIONS FOUND!");
  return AllOk ? 0 : 1;
}
