//===-- bench/bench_native_queues.cpp - Experiment P1 ----------------------===//
//
// The performance motivation behind the paper's subject libraries
// (Sections 1-2): fine-grained relaxed queues vs. a coarse mutex
// baseline, on real std::atomic implementations. Measures an
// enqueue+dequeue pair per iteration under 1-4 threads.
//
// Expected shape: the lock-free queues sustain throughput as threads
// grow, while the mutex queue serializes; absolute numbers depend on the
// host (this machine exposes a single core, so scaling is modest and the
// mutex baseline suffers mainly from syscall/contention overhead).
//
//===----------------------------------------------------------------------===//

#include "native/HwQueue.h"
#include "native/Locked.h"
#include "native/MsQueue.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace compass::native;

namespace {

constexpr uint64_t PairsPerThread = 8'000;

std::unique_ptr<MsQueue<uint64_t>> GMs;
std::unique_ptr<MutexQueue<uint64_t>> GMutex;
std::unique_ptr<HwQueue<>> GHw;

void msSetup(const benchmark::State &) {
  GMs = std::make_unique<MsQueue<uint64_t>>();
}
void msTeardown(const benchmark::State &) { GMs.reset(); }

void mutexSetup(const benchmark::State &) {
  GMutex = std::make_unique<MutexQueue<uint64_t>>();
}
void mutexTeardown(const benchmark::State &) { GMutex.reset(); }

void hwSetup(const benchmark::State &) {
  // Lifetime capacity: every iteration of every thread enqueues once.
  GHw = std::make_unique<HwQueue<>>(PairsPerThread * 4 + 16);
}
void hwTeardown(const benchmark::State &) { GHw.reset(); }

void bmMsQueue(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GMs->enqueue(V++);
    benchmark::DoNotOptimize(GMs->dequeue());
  }
  State.SetItemsProcessed(State.iterations());
}

void bmMutexQueue(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GMutex->enqueue(V++);
    benchmark::DoNotOptimize(GMutex->dequeue());
  }
  State.SetItemsProcessed(State.iterations());
}

void bmHwQueue(benchmark::State &State) {
  uint64_t V = 1;
  for (auto _ : State) {
    GHw->enqueue((uint64_t(State.thread_index()) << 32) | V++);
    benchmark::DoNotOptimize(GHw->dequeue());
  }
  State.SetItemsProcessed(State.iterations());
}

} // namespace

int main(int argc, char **argv) {
  for (int Threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark("P1/ms_queue/enq_deq_pair", bmMsQueue)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(msSetup)
        ->Teardown(msTeardown)
        ->UseRealTime();
    benchmark::RegisterBenchmark("P1/hw_queue/enq_deq_pair", bmHwQueue)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(hwSetup)
        ->Teardown(hwTeardown)
        ->UseRealTime();
    benchmark::RegisterBenchmark("P1/mutex_queue/enq_deq_pair",
                                 bmMutexQueue)
        ->Threads(Threads)
        ->Iterations(PairsPerThread)
        ->Setup(mutexSetup)
        ->Teardown(mutexTeardown)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
